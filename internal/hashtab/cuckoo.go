package hashtab

import (
	"fmt"

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// cuckooStore is standard two-table cuckoo hashing (Fig. 4): every key has
// one candidate slot per table; insertion evicts the incumbent and
// relocates it to its slot in the other table, chaining until an empty
// slot is found. Detected cycles trigger a rehash with fresh hash
// functions. Each table is sized to the key count, keeping the aggregate
// load factor at ≤50% as the paper requires (§IV-C).
type cuckooStore struct {
	dev   *gpusim.Device
	tabs  [2]slotIO
	mask  int
	seeds [2]uint64
	epoch uint64 // bumped per rehash to derive new hash functions
	mode  LockMode
	lock  *gpusim.Lock
	perf  bool
	stats Stats
	nKeys int
}

const maxKicks = 64

func newCuckoo(dev *gpusim.Device, name string, cfg Config) *cuckooStore {
	capacity := nextPow2(cfg.NumKeys*5/4 + 1) // aggregate load factor <= 40%
	c := &cuckooStore{
		dev:   dev,
		mask:  capacity - 1,
		mode:  cfg.LockMode,
		perf:  cfg.PerfectSlot,
		nKeys: cfg.NumKeys,
	}
	c.tabs[0] = makeTable(dev, name+".t1", capacity)
	c.tabs[1] = makeTable(dev, name+".t2", capacity)
	c.setSeeds(cfg.Seed, 0)
	if cfg.LockMode == LockBased {
		c.lock = dev.NewLock(name + ".lock")
	}
	return c
}

func (c *cuckooStore) setSeeds(base, epoch uint64) {
	c.epoch = epoch
	c.seeds[0] = mix64(base, 0x5bf0_3635+epoch)
	c.seeds[1] = mix64(base, 0xc2b2_ae35+epoch*2654435761)
}

func (c *cuckooStore) Kind() Kind        { return Cuckoo }
func (c *cuckooStore) Stats() *Stats     { return &c.stats }
func (c *cuckooStore) TableBytes() int64 { return 2 * int64(c.tabs[0].cap) * slotBytes }

// TableRegions implements Store.
func (c *cuckooStore) TableRegions() []memsim.Region {
	return []memsim.Region{c.tabs[0].region, c.tabs[1].region}
}
func (c *cuckooStore) Clear() {
	c.tabs[0].clear()
	c.tabs[1].clear()
}

func (c *cuckooStore) slotFor(key uint64, table int) int {
	if c.perf {
		// §IV-D.2: first lookup during insertion always finds an empty
		// entry — direct indexing is collision-free for unique keys.
		return int(key) & c.mask
	}
	return int(mix64(key, c.seeds[table])) & c.mask
}

// Insert implements Store.
func (c *cuckooStore) Insert(t *gpusim.Thread, key uint64, sum checksum.State) {
	blockStats(t, &c.stats).Inserts++
	if c.mode == LockBased {
		t.LockAcquire(c.lock)
		defer t.LockRelease(c.lock)
	}
	c.insert(t, key, sum)
}

func (c *cuckooStore) insert(t *gpusim.Thread, key uint64, sum checksum.State) {
	st := blockStats(t, &c.stats)
	curKey, curSum := PackKey(key), sum
	table := 0
	for kick := 0; kick < maxKicks; kick++ {
		slot := c.slotFor(curKey-1, table)
		tab := c.tabs[table]
		t.Op(2)
		st.Probes++

		var oldKey uint64
		switch c.mode {
		case NoAtomic:
			// Swap through a temporary instead of atomicExch: a load, a
			// store, and a verification read-back; a concurrent insertion
			// into the same slot loses one of the two updates, detected
			// deterministically via RacyTouch and redone (§IV-D.3).
			t.Stall(noAtomicStallCycles)
			// Even unsynchronized, the swap-through-temporary sequence
			// serializes at the L2 partition three times over.
			t.SerializeOn(tab.region, tab.keyIdx(slot)*8)
			t.SerializeOn(tab.region, tab.keyIdx(slot)*8)
			t.SerializeOn(tab.region, tab.keyIdx(slot)*8)
			raced := t.RacyTouch(tab.region, tab.keyIdx(slot)*8, raceWindowCycles)
			oldKey = t.LoadU64K(memsim.AccessChecksum, tab.region, tab.keyIdx(slot))
			t.StoreU64K(memsim.AccessChecksum, tab.region, tab.keyIdx(slot), curKey)
			_ = t.LoadU64K(memsim.AccessChecksum, tab.region, tab.keyIdx(slot))
			t.Op(2)
			if raced {
				// Our exchange was clobbered: put the incumbent back and
				// retry the same position.
				t.StoreU64K(memsim.AccessChecksum, tab.region, tab.keyIdx(slot), oldKey)
				st.RaceRedos++
				st.Collisions++
				continue
			}
		default:
			oldKey = t.AtomicExchU64(tab.region, tab.keyIdx(slot), curKey)
		}

		if oldKey == 0 || oldKey == curKey {
			tab.storeChecksums(t, slot, curSum)
			c.noteProbeDepth(st, int64(kick))
			return
		}
		// Displaced an incumbent: read its payload before overwriting,
		// write ours, and relocate the incumbent to the other table.
		// Each hop of the eviction chain depends on the previous
		// exchange's result, exposing a round trip per kick.
		st.Collisions++
		t.Stall(retryStallCycles)
		oldSum := tab.loadChecksums(t, slot)
		tab.storeChecksums(t, slot, curSum)
		curKey, curSum = oldKey, oldSum
		table ^= 1
	}
	// Eviction cycle: rehash with new functions and retry (§IV-C).
	c.rehash(t)
	c.insert(t, curKey-1, curSum)
}

// rehash rebuilds both tables with fresh hash functions, reinserting every
// resident entry. All traffic is charged to the calling thread, as the
// rehash runs on-device in the paper's design.
func (c *cuckooStore) rehash(t *gpusim.Thread) {
	if t.Block().Speculative() {
		// A rehash replaces the hash functions — shared store state no
		// speculative block may touch. Panic out of the speculative run;
		// the worker converts it into a direct re-execution at the block's
		// dispatch slot, where the rehash applies serially.
		panic("hashtab: cuckoo rehash during speculative execution")
	}
	c.stats.Rehashes++
	if c.stats.Rehashes > 64 {
		panic(fmt.Sprintf("hashtab: cuckoo rehash storm (%d keys, cap %d per table)", c.nKeys, c.tabs[0].cap))
	}
	type entry struct {
		key uint64
		sum checksum.State
	}
	var entries []entry
	for ti := 0; ti < 2; ti++ {
		tab := c.tabs[ti]
		for slot := 0; slot < tab.cap; slot++ {
			k := t.LoadU64K(memsim.AccessChecksum, tab.region, tab.keyIdx(slot))
			if k != 0 {
				entries = append(entries, entry{k, tab.loadChecksums(t, slot)})
				t.StoreU64K(memsim.AccessChecksum, tab.region, tab.keyIdx(slot), 0)
			}
		}
	}
	c.setSeeds(c.seeds[0], c.epoch+1)
	for _, e := range entries {
		c.insert(t, e.key-1, e.sum)
	}
}

func (c *cuckooStore) noteProbeDepth(st *Stats, i int64) {
	if i > st.MaxProbe {
		st.MaxProbe = i
	}
}

// Lookup implements Store: at most one probe per table (the constant-time
// lookup that makes cuckoo attractive, §IV-C).
func (c *cuckooStore) Lookup(t *gpusim.Thread, key uint64) (checksum.State, bool) {
	blockStats(t, &c.stats).Lookups++
	for table := 0; table < 2; table++ {
		slot := c.slotFor(key, table)
		tab := c.tabs[table]
		t.Op(2)
		if got := t.LoadU64K(memsim.AccessChecksum, tab.region, tab.keyIdx(slot)); got == PackKey(key) {
			return tab.loadChecksums(t, slot), true
		}
	}
	return checksum.State{}, false
}
