// Package hashtab implements the checksum stores explored by the Lazy
// Persistency on GPUs paper (§IV-C and §V): an open-addressing quadratic
// probing hash table, a two-table cuckoo hash table, and the paper's
// proposed hash-table-less global array. Each store lives in simulated
// GPU global memory (so its contents are subject to the same lazy
// persistency as the data it protects), supports a lock-free variant
// built on atomics, a lock-based variant, and — for the §IV-D.3 ablation
// — an unsafe variant with the atomics removed.
//
// A store maps a unique key (the LP region id, i.e. the thread block id)
// to a dual checksum. Insertion is on the critical path of normal
// execution; lookup happens only during crash recovery.
package hashtab

import (
	"fmt"

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// Kind selects the checksum store organization.
type Kind int

const (
	// Quad is open addressing with (triangular) quadratic probing.
	Quad Kind = iota
	// Cuckoo is two-table cuckoo hashing with eviction chains.
	Cuckoo
	// GlobalArray is the paper's proposal (§V): one slot per thread
	// block, indexed directly by block id — collision-free, race-free,
	// 100% load factor.
	GlobalArray
	// Chained is the original CPU LP design (§II-A): buckets of linked
	// lists. Feasible at CPU core counts, pathological at GPU thread
	// counts — implemented for the characterization.
	Chained
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Quad:
		return "quad"
	case Cuckoo:
		return "cuckoo"
	case GlobalArray:
		return "global-array"
	case Chained:
		return "chained"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// LockMode selects the synchronization discipline for insertions.
type LockMode int

const (
	// LockFree uses atomicCAS (quad) / atomicExch (cuckoo) per probe.
	LockFree LockMode = iota
	// LockBased serializes insertions behind a single table lock, as in
	// the CPU LP design the paper starts from.
	LockBased
	// NoAtomic replaces the atomics with plain check-then-act sequences
	// (§IV-D.3); races become retries, and each probe costs extra
	// verification traffic.
	NoAtomic
)

// String implements fmt.Stringer.
func (m LockMode) String() string {
	switch m {
	case LockFree:
		return "lock-free"
	case LockBased:
		return "lock-based"
	case NoAtomic:
		return "no-atomic"
	}
	return fmt.Sprintf("LockMode(%d)", int(m))
}

// Stats counts insertion behaviour; Collisions is the Table II metric
// (occupied slots encountered while inserting).
type Stats struct {
	Inserts    int64
	Lookups    int64
	Collisions int64
	Probes     int64
	MaxProbe   int64
	Rehashes   int64
	RaceRedos  int64
	// Overflows counts inserts dropped because the store ran out of
	// space — reachable only when its allocation state is corrupted
	// (e.g. a bit-flipped bump cursor), since capacity covers one node
	// per key. A dropped insert surfaces as a validation failure, which
	// recovery escalation repairs by rebuilding the store.
	Overflows int64
}

// merge folds o into s. Every field is commutative (sums and a max), so
// merging per-block partials in dispatch order reproduces the serial
// counters exactly.
func (s *Stats) merge(o *Stats) {
	s.Inserts += o.Inserts
	s.Lookups += o.Lookups
	s.Collisions += o.Collisions
	s.Probes += o.Probes
	if o.MaxProbe > s.MaxProbe {
		s.MaxProbe = o.MaxProbe
	}
	s.Rehashes += o.Rehashes
	s.RaceRedos += o.RaceRedos
	s.Overflows += o.Overflows
}

// blockStats returns the Stats a store operation should mutate on behalf
// of thread t: the store's own counters when the block executes directly,
// or a per-block staged copy — merged into real at the block's
// dispatch-order commit — when the block executes speculatively. Keyed by
// the real *Stats so several stores (or a store and its tests) stage
// independently within one block.
func blockStats(t *gpusim.Thread, real *Stats) *Stats {
	b := t.Block()
	if !b.Speculative() {
		return real
	}
	return b.Staged(real, func() any {
		st := &Stats{}
		b.OnCommit(func() { real.merge(st) })
		return st
	}).(*Stats)
}

// Store is a checksum table in device global memory.
type Store interface {
	// Kind returns the organization of the store.
	Kind() Kind
	// Insert stores the checksum for key; called by one thread per LP
	// region at region end. key must be unique per region.
	Insert(t *gpusim.Thread, key uint64, sum checksum.State)
	// Lookup retrieves the durably stored checksum for key during crash
	// recovery. ok is false when the key is absent (its insertion never
	// persisted).
	Lookup(t *gpusim.Thread, key uint64) (sum checksum.State, ok bool)
	// ImageLookup is Lookup over a raw durable image (NVMImage or an
	// oracle shadow of it) through plain byte reads — no device, no
	// traffic, no stats. It must agree with Lookup run over the same
	// durable bytes; the crash-consistency checker holds the two paths
	// against each other.
	ImageLookup(img []byte, key uint64) (sum checksum.State, ok bool)
	// TableBytes is the global-memory footprint of the store, used for
	// the Table V space-overhead column.
	TableBytes() int64
	// TableRegions returns the global-memory allocations backing the
	// store, so fault-injection campaigns can target checksum-store
	// corruption directly.
	TableRegions() []memsim.Region
	// Stats returns the mutable statistics of the store.
	Stats() *Stats
	// Clear durably empties the store (host-side, between runs).
	Clear()
}

// Merger is implemented by stores that support accumulating partial
// checksums into a shared entry (required for fused LP regions, where
// several thread blocks contribute to one checksum). Only the global
// array supports it: hash tables would need claim-then-merge races that
// defeat their purpose.
type Merger interface {
	Store
	// MergeInsert folds a partial checksum into key's entry.
	MergeInsert(t *gpusim.Thread, key uint64, sum checksum.State)
	// LookupCount retrieves the merged checksum and contributor count.
	LookupCount(t *gpusim.Thread, key uint64) (checksum.State, uint64)
	// HostResetEntry durably re-initializes key's entry (recovery).
	HostResetEntry(key uint64)
}

// Config parameterizes store construction.
type Config struct {
	// Kind and LockMode choose the design point.
	Kind     Kind
	LockMode LockMode
	// NumKeys is the number of LP regions (thread blocks) the store
	// must hold; capacities are derived from it with each design's
	// load-factor rule (§IV-C: quad ≤ 70%, cuckoo ≤ 50%, array 100%).
	NumKeys int
	// PerfectSlot forces every first probe to land on an empty slot
	// (the §IV-D.2 "remove collision" experiment). Implemented by
	// direct-indexing while keeping the instruction sequence intact.
	PerfectSlot bool
	// Seed perturbs the hash functions.
	Seed uint64
	// QuadLoadPct overrides the quadratic-probing table's target load
	// factor in percent (default 70, the paper's limit). Used by the
	// load-factor ablation; capacities still round up to powers of two.
	QuadLoadPct int
	// MergeCount builds the global array with a third, contributor-count
	// word per entry, enabling MergeInsert for fused LP regions.
	MergeCount bool
}

// slotWords is the number of uint64 words per table slot:
// [key+1, modular checksum, parity checksum, reserved]. 32 bytes — one L2
// sector, so atomic conflicts resolve per slot.
const slotWords = 4

const slotBytes = slotWords * 8

// raceWindowCycles is how close (in cycles) two unsynchronized accesses to
// a slot must be for the NoAtomic variants to count a destructive race.
const raceWindowCycles = 400

// noAtomicStallCycles is the exposed latency of one emulated
// compare-and-swap: a load, a dependent store, and a dependent
// verification read-back form a chain of L2 round trips the warp
// scheduler cannot hide, unlike a single pipelined atomic (§IV-D.3 found
// removing atomics makes insertion dramatically slower).
const noAtomicStallCycles = 480

// retryStallCycles is the exposed latency of one additional probe after
// a collision: the next probe's address depends on the previous atomic's
// result, so the L2 round trip is on the critical path of the inserting
// thread.
const retryStallCycles = 240

// New builds a Store on dev per cfg. The table region is durably zeroed.
func New(dev *gpusim.Device, name string, cfg Config) Store {
	if cfg.NumKeys <= 0 {
		panic(fmt.Sprintf("hashtab: NumKeys must be positive, got %d", cfg.NumKeys))
	}
	switch cfg.Kind {
	case Quad:
		return newQuad(dev, name, cfg)
	case Cuckoo:
		return newCuckoo(dev, name, cfg)
	case GlobalArray:
		return newGlobalArray(dev, name, cfg)
	case Chained:
		return newChained(dev, name, cfg)
	}
	panic(fmt.Sprintf("hashtab: unknown kind %v", cfg.Kind))
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// mix64 is SplitMix64, a high-quality 64-bit mixer used as the hash
// function family (seeded).
func mix64(x, seed uint64) uint64 {
	x += 0x9e3779b97f4a7c15 + seed
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// slotIO centralizes typed access to slot words in a table region.
type slotIO struct {
	region memsim.Region
	cap    int
}

func makeTable(dev *gpusim.Device, name string, capacity int) slotIO {
	r := dev.Alloc(name, capacity*slotBytes)
	r.HostZero()
	return slotIO{region: r, cap: capacity}
}

func (s slotIO) keyIdx(slot int) int { return slot * slotWords }
func (s slotIO) modIdx(slot int) int { return slot*slotWords + 1 }
func (s slotIO) parIdx(slot int) int { return slot*slotWords + 2 }

// storeChecksums writes the checksum payload of slot (plain stores,
// tagged as checksum traffic).
func (s slotIO) storeChecksums(t *gpusim.Thread, slot int, sum checksum.State) {
	t.StoreU64K(memsim.AccessChecksum, s.region, s.modIdx(slot), sum.Mod)
	t.StoreU64K(memsim.AccessChecksum, s.region, s.parIdx(slot), sum.Par)
}

// loadChecksums reads the checksum payload of slot.
func (s slotIO) loadChecksums(t *gpusim.Thread, slot int) checksum.State {
	mod := t.LoadU64K(memsim.AccessChecksum, s.region, s.modIdx(slot))
	par := t.LoadU64K(memsim.AccessChecksum, s.region, s.parIdx(slot))
	return checksum.State{Mod: mod, Par: par}
}

func (s slotIO) clear() { s.region.HostZero() }
