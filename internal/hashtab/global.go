package hashtab

import (
	"fmt"

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// globalArray is the paper's hash-table-less checksum store (§V): one
// entry per thread block, indexed directly by block id. Because every LP
// region owns a distinct entry, the design is collision-free and
// race-free by construction — no atomics, no locks, no probing — and
// runs at a 100% load factor, the minimum possible space.
//
// In merge-count mode (region fusion, §IV-A) an entry is shared by a
// group of blocks that each fold a partial checksum into it with atomic
// add/xor; a third word counts contributors so validation can tell a
// fully-merged entry from a partially-persisted one (or from all-zero
// data over a zeroed entry).
type globalArray struct {
	region memsim.Region
	nKeys  int
	merge  bool
	stats  Stats
}

// gaWords is the plain entry size in uint64 words: [modular, parity].
// Merge-count mode adds a third word: [modular, parity, contributors].
const gaWords = 2

const gaMergeWords = 3

// gaSentinel is the initialization value of every plain-mode entry word —
// the "checksum initialized to NaN" of §II-A. Without it, a block whose
// data and checksum both failed to persist over zero-initialized memory
// would recompute {0,0} and falsely validate against the zeroed entry.
// Merge-count mode instead zero-initializes (the identity for add/xor)
// and relies on the contributor count for the same protection.
const gaSentinel = ^uint64(0)

func newGlobalArray(dev *gpusim.Device, name string, cfg Config) *globalArray {
	words := gaWords
	if cfg.MergeCount {
		words = gaMergeWords
	}
	r := dev.Alloc(name, cfg.NumKeys*words*8)
	g := &globalArray{region: r, nKeys: cfg.NumKeys, merge: cfg.MergeCount}
	g.Clear()
	return g
}

func (g *globalArray) words() int {
	if g.merge {
		return gaMergeWords
	}
	return gaWords
}

func (g *globalArray) Kind() Kind        { return GlobalArray }
func (g *globalArray) Stats() *Stats     { return &g.stats }
func (g *globalArray) TableBytes() int64 { return int64(g.nKeys) * int64(g.words()) * 8 }

// TableRegions implements Store.
func (g *globalArray) TableRegions() []memsim.Region { return []memsim.Region{g.region} }

// Clear durably re-initializes the table.
func (g *globalArray) Clear() {
	if g.merge {
		g.region.HostZero()
	} else {
		g.region.HostFillU64(gaSentinel)
	}
}

func (g *globalArray) check(key uint64) {
	if key >= uint64(g.nKeys) {
		panic(fmt.Sprintf("hashtab: global array key %d out of range [0,%d)", key, g.nKeys))
	}
}

// Insert implements Store: two plain stores to the block's own entry.
func (g *globalArray) Insert(t *gpusim.Thread, key uint64, sum checksum.State) {
	g.check(key)
	st := blockStats(t, &g.stats)
	st.Inserts++
	st.Probes++
	t.Op(1) // index arithmetic
	w := g.words()
	t.StoreU64K(memsim.AccessChecksum, g.region, int(key)*w, sum.Mod)
	t.StoreU64K(memsim.AccessChecksum, g.region, int(key)*w+1, sum.Par)
	if g.merge {
		t.StoreU64K(memsim.AccessChecksum, g.region, int(key)*w+2, 1)
	}
}

// MergeInsert folds a partial checksum into key's entry instead of
// overwriting it — the primitive behind region fusion (§IV-A: thread
// blocks "can be enlarged if needed, e.g. through thread block fusion"),
// where several blocks share one LP region and each contributes its
// partial checksums with atomic add/xor. Both checksum components are
// commutative, so contribution order is irrelevant; the contributor
// count lets validation require exactly groupSize contributions.
func (g *globalArray) MergeInsert(t *gpusim.Thread, key uint64, sum checksum.State) {
	if !g.merge {
		panic("hashtab: MergeInsert on a global array built without MergeCount")
	}
	g.check(key)
	st := blockStats(t, &g.stats)
	st.Inserts++
	st.Probes++
	t.Op(1)
	t.AtomicAddU64(g.region, int(key)*gaMergeWords, sum.Mod)
	t.AtomicXorU64(g.region, int(key)*gaMergeWords+1, sum.Par)
	t.AtomicAddU64(g.region, int(key)*gaMergeWords+2, 1)
}

// LookupCount retrieves the merged checksum and the contributor count.
func (g *globalArray) LookupCount(t *gpusim.Thread, key uint64) (checksum.State, uint64) {
	if !g.merge {
		panic("hashtab: LookupCount on a global array built without MergeCount")
	}
	g.check(key)
	blockStats(t, &g.stats).Lookups++
	t.Op(1)
	mod := t.LoadU64K(memsim.AccessChecksum, g.region, int(key)*gaMergeWords)
	par := t.LoadU64K(memsim.AccessChecksum, g.region, int(key)*gaMergeWords+1)
	count := t.LoadU64K(memsim.AccessChecksum, g.region, int(key)*gaMergeWords+2)
	return checksum.State{Mod: mod, Par: par}, count
}

// HostResetEntry durably re-initializes key's entry. Recovery of a fused
// region must reset its entry before the member blocks re-execute and
// re-merge their contributions.
func (g *globalArray) HostResetEntry(key uint64) {
	g.check(key)
	w := g.words()
	init := gaSentinel
	if g.merge {
		init = 0
	}
	for i := 0; i < w; i++ {
		g.region.HostPutU64(int(key)*w+i, init)
	}
}

// Lookup implements Store. In plain mode, an entry still holding the
// initialization sentinel means the block's checksum store never
// persisted (ok=false); any other stale contents simply fail the
// caller's checksum comparison, exactly as in the paper's recovery flow.
// In merge-count mode, ok requires a nonzero contributor count.
func (g *globalArray) Lookup(t *gpusim.Thread, key uint64) (checksum.State, bool) {
	g.check(key)
	if g.merge {
		st, count := g.LookupCount(t, key)
		return st, count > 0
	}
	blockStats(t, &g.stats).Lookups++
	t.Op(1)
	mod := t.LoadU64K(memsim.AccessChecksum, g.region, int(key)*gaWords)
	par := t.LoadU64K(memsim.AccessChecksum, g.region, int(key)*gaWords+1)
	if mod == gaSentinel && par == gaSentinel {
		return checksum.State{}, false
	}
	return checksum.State{Mod: mod, Par: par}, true
}
