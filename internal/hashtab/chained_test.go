package hashtab

import (
	"testing"

	"gpulp/internal/gpusim"
)

func TestChainedInsertLookup(t *testing.T) {
	for _, mode := range []LockMode{LockFree, LockBased} {
		t.Run(mode.String(), func(t *testing.T) {
			dev := newTestDevice()
			s := New(dev, "tbl", Config{Kind: Chained, LockMode: mode, NumKeys: 700, Seed: 5})
			insertAll(dev, s, 700)
			lookupAll(t, dev, s, 700)
			if s.Stats().Inserts != 700 {
				t.Errorf("inserts = %d", s.Stats().Inserts)
			}
		})
	}
}

func TestChainedHandlesHeavyCollisions(t *testing.T) {
	// More keys than buckets would break open addressing; chaining must
	// absorb them (the property that makes it attractive on CPUs).
	dev := newTestDevice()
	s := New(dev, "tbl", Config{Kind: Chained, NumKeys: 96, Seed: 1})
	// Force everything into long chains with a tiny bucket count by
	// inserting sequential keys; with 128 buckets and 96 keys, chains are
	// short, so instead check the collision counter is consistent.
	insertAll(dev, s, 96)
	lookupAll(t, dev, s, 96)
}

func TestChainedLookupMiss(t *testing.T) {
	dev := newTestDevice()
	s := New(dev, "tbl", Config{Kind: Chained, NumKeys: 64, Seed: 2})
	insertAll(dev, s, 32)
	var missOK = true
	dev.Launch("miss", gpusim.D1(64), gpusim.D1(32), func(b *gpusim.Block) {
		b.ForAll(func(th *gpusim.Thread) {
			if th.Linear != 0 {
				return
			}
			_, ok := s.Lookup(th, uint64(b.LinearIdx))
			if want := b.LinearIdx < 32; ok != want {
				missOK = false
			}
		})
	})
	if !missOK {
		t.Error("chained lookup hit/miss pattern wrong")
	}
}

func TestChainedPoolExhaustionDropsInsert(t *testing.T) {
	// One node beyond capacity: the insert is dropped (counted as an
	// overflow) instead of faulting, so recovery can escalate to a store
	// rebuild. The in-capacity keys stay intact.
	dev := newTestDevice()
	s := New(dev, "tbl", Config{Kind: Chained, NumKeys: 8, Seed: 2})
	insertAll(dev, s, 9)
	if s.Stats().Overflows != 1 {
		t.Fatalf("overflows = %d, want 1", s.Stats().Overflows)
	}
	lookupAll(t, dev, s, 8)
	found := true
	dev.Launch("miss", gpusim.D1(1), gpusim.D1(1), func(b *gpusim.Block) {
		b.ForAll(func(th *gpusim.Thread) {
			_, found = s.Lookup(th, 8)
		})
	})
	if found {
		t.Error("dropped key 8 unexpectedly present")
	}
}

func TestChainedReinsertUpdatesInPlace(t *testing.T) {
	// Re-committing every key (as multi-epoch runs and recovery
	// re-execution do) must update nodes in place, not consume pool
	// space.
	dev := newTestDevice()
	s := New(dev, "tbl", Config{Kind: Chained, NumKeys: 16, Seed: 4})
	for round := 0; round < 5; round++ {
		insertAll(dev, s, 16)
	}
	if ov := s.Stats().Overflows; ov != 0 {
		t.Fatalf("overflows = %d after re-inserts, want 0", ov)
	}
	lookupAll(t, dev, s, 16)
}

func TestChainedClear(t *testing.T) {
	dev := newTestDevice()
	s := New(dev, "tbl", Config{Kind: Chained, NumKeys: 32, Seed: 2})
	insertAll(dev, s, 32)
	s.Clear()
	found := false
	dev.Launch("check", gpusim.D1(1), gpusim.D1(32), func(b *gpusim.Block) {
		b.ForAll(func(th *gpusim.Thread) {
			if th.Linear == 0 {
				_, found = s.Lookup(th, 3)
			}
		})
	})
	if found {
		t.Error("key survived Clear")
	}
}

func TestChainedLockBasedSlower(t *testing.T) {
	n := 2000
	devF := newTestDevice()
	free := New(devF, "tbl", Config{Kind: Chained, NumKeys: n, Seed: 5})
	resF := insertAll(devF, free, n)

	devL := newTestDevice()
	locked := New(devL, "tbl", Config{Kind: Chained, NumKeys: n, Seed: 5, LockMode: LockBased})
	resL := insertAll(devL, locked, n)

	if resL.Cycles <= resF.Cycles {
		t.Errorf("lock-based chained (%d cycles) not slower than lock-free (%d)", resL.Cycles, resF.Cycles)
	}
}

func TestChainedLookupSlowerThanGlobalArray(t *testing.T) {
	// Pointer chasing makes chained lookups pay exposed latency that the
	// direct-indexed global array never does.
	n := 1000
	lookupCycles := func(kind Kind) int64 {
		dev := newTestDevice()
		s := New(dev, "tbl", Config{Kind: kind, NumKeys: n, Seed: 5})
		insertAll(dev, s, n)
		res := dev.Launch("lookup", gpusim.D1(n), gpusim.D1(32), func(b *gpusim.Block) {
			b.ForAll(func(th *gpusim.Thread) {
				if th.Linear == 0 {
					s.Lookup(th, uint64(b.LinearIdx))
				}
			})
		})
		return res.Cycles
	}
	if c, g := lookupCycles(Chained), lookupCycles(GlobalArray); c <= g {
		t.Errorf("chained lookup (%d cycles) not slower than global array (%d)", c, g)
	}
}
