package hashtab

import (

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// chainedStore is the original CPU Lazy Persistency checksum table
// (§II-A, Fig. 3 left): buckets of linked lists, collisions handled by
// chaining new nodes. The paper explains why this design is feasible on
// CPUs ("since CPUs only [have] a small number of cores ... hash table
// insertion and chaining for handling collision are a feasible
// strategy") and why it is not on GPUs: pointer chasing and
// synchronization on shared entries. It is implemented here so the
// characterization can show exactly that (the cpulp experiment).
//
// Layout in device memory: a bucket array of head indices (0 = empty)
// and a node pool of [key, mod, par, next] records allocated with an
// atomic bump cursor. LockFree pushes nodes with compare-and-swap on the
// head; LockBased serializes insertions behind a table lock as the CPU
// implementation did.
type chainedStore struct {
	dev     *gpusim.Device
	heads   memsim.Region // uint64 per bucket: node index + 1, 0 = empty
	pool    memsim.Region // nodes: [key+1, mod, par, next] uint64s
	cursor  memsim.Region // uint64 bump allocator
	buckets int
	mask    int
	cap     int
	seed    uint64
	mode    LockMode
	lock    *gpusim.Lock
	stats   Stats
}

const chainNodeWords = 4

// chainPointerStall is the exposed latency of following one chain link:
// the next node's address depends on the previous load (§IV-C: chaining
// "requires pointer chasing").
const chainPointerStall = 240

func newChained(dev *gpusim.Device, name string, cfg Config) *chainedStore {
	// CPU-style sizing: buckets ≈ keys (load factor ~1 with chains).
	buckets := nextPow2(cfg.NumKeys)
	c := &chainedStore{
		dev:     dev,
		buckets: buckets,
		mask:    buckets - 1,
		cap:     cfg.NumKeys,
		seed:    cfg.Seed,
		mode:    cfg.LockMode,
	}
	c.heads = dev.Alloc(name+".heads", buckets*8)
	c.pool = dev.Alloc(name+".pool", cfg.NumKeys*chainNodeWords*8)
	c.cursor = dev.Alloc(name+".cursor", 8)
	c.Clear()
	if cfg.LockMode == LockBased {
		c.lock = dev.NewLock(name + ".lock")
	}
	return c
}

func (c *chainedStore) Kind() Kind    { return Chained }
func (c *chainedStore) Stats() *Stats { return &c.stats }
func (c *chainedStore) TableBytes() int64 {
	return int64(c.buckets)*8 + int64(c.cap)*chainNodeWords*8 + 8
}

// TableRegions implements Store.
func (c *chainedStore) TableRegions() []memsim.Region {
	return []memsim.Region{c.heads, c.pool, c.cursor}
}

// Clear durably empties buckets and the node pool cursor.
func (c *chainedStore) Clear() {
	c.heads.HostZero()
	c.pool.HostZero()
	c.cursor.HostZero()
}

func (c *chainedStore) bucketOf(key uint64) int {
	return int(mix64(key, c.seed)) & c.mask
}

// Insert implements Store: update the key's node in place when the chain
// already holds one (re-commits — later epochs, recovery re-execution —
// must not consume pool space), otherwise allocate a node from the pool
// and push it at the bucket head.
func (c *chainedStore) Insert(t *gpusim.Thread, key uint64, sum checksum.State) {
	st := blockStats(t, &c.stats)
	st.Inserts++
	if c.mode == LockBased {
		t.LockAcquire(c.lock)
		defer t.LockRelease(c.lock)
	}
	bucketIdx := c.bucketOf(key)
	t.Op(4)
	cur := t.LoadU64K(memsim.AccessChecksum, c.heads, bucketIdx)
	for depth := 0; cur != 0 && cur <= uint64(c.cap) && depth <= c.cap; depth++ {
		nb := int(cur-1) * chainNodeWords
		if t.LoadU64K(memsim.AccessChecksum, c.pool, nb) == PackKey(key) {
			t.StoreU64K(memsim.AccessChecksum, c.pool, nb+1, sum.Mod)
			t.StoreU64K(memsim.AccessChecksum, c.pool, nb+2, sum.Par)
			return
		}
		cur = t.LoadU64K(memsim.AccessChecksum, c.pool, nb+3)
		t.Stall(chainPointerStall)
	}
	node := t.AtomicAddU64(c.cursor, 0, 1)
	if node >= uint64(c.cap) {
		// Out of nodes: only reachable when the durable cursor is
		// corrupted (capacity covers one node per key). Drop the insert
		// — validation will flag the region and recovery escalation
		// rebuilds the store from a clean Clear().
		st.Overflows++
		return
	}
	base := int(node) * chainNodeWords
	t.StoreU64K(memsim.AccessChecksum, c.pool, base, PackKey(key))
	t.StoreU64K(memsim.AccessChecksum, c.pool, base+1, sum.Mod)
	t.StoreU64K(memsim.AccessChecksum, c.pool, base+2, sum.Par)
	bucket := bucketIdx
	st.Probes++

	if c.mode == LockFree {
		// CAS push: link to the current head, then swing the head.
		for {
			head := t.LoadU64K(memsim.AccessChecksum, c.heads, bucket)
			t.StoreU64K(memsim.AccessChecksum, c.pool, base+3, head)
			if t.AtomicCASU64(c.heads, bucket, head, node+1) == head {
				if head != 0 {
					st.Collisions++
				}
				return
			}
			st.Collisions++
			t.Stall(retryStallCycles)
		}
	}
	// Lock-based (or unsafely unsynchronized): plain head push.
	head := t.LoadU64K(memsim.AccessChecksum, c.heads, bucket)
	if head != 0 {
		st.Collisions++
	}
	t.StoreU64K(memsim.AccessChecksum, c.pool, base+3, head)
	t.StoreU64K(memsim.AccessChecksum, c.heads, bucket, node+1)
}

// Lookup implements Store: walk the chain, one dependent load per link.
// Corrupt links (node index past the pool) terminate the walk as "not
// found" rather than faulting — validation then reports the key failed.
func (c *chainedStore) Lookup(t *gpusim.Thread, key uint64) (checksum.State, bool) {
	blockStats(t, &c.stats).Lookups++
	bucket := c.bucketOf(key)
	t.Op(4)
	cur := t.LoadU64K(memsim.AccessChecksum, c.heads, bucket)
	for depth := 0; cur != 0 && cur <= uint64(c.cap) && depth <= c.cap; depth++ {
		base := int(cur-1) * chainNodeWords
		got := t.LoadU64K(memsim.AccessChecksum, c.pool, base)
		if got == PackKey(key) {
			mod := t.LoadU64K(memsim.AccessChecksum, c.pool, base+1)
			par := t.LoadU64K(memsim.AccessChecksum, c.pool, base+2)
			return checksum.State{Mod: mod, Par: par}, true
		}
		cur = t.LoadU64K(memsim.AccessChecksum, c.pool, base+3)
		t.Stall(chainPointerStall)
	}
	return checksum.State{}, false
}
