package hashtab

import (
	"fmt"
	"testing"
	"testing/quick"

	"gpulp/internal/checksum"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

func newTestDevice() *gpusim.Device {
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 4
	return gpusim.MustNew(cfg, memsim.MustNew(memsim.Config{
		LineSize: 128, CacheBytes: 2 << 20, Ways: 8,
		NVMReadNS: 160, NVMWriteNS: 480, NVMBandwidthGBs: 326.4,
	}))
}

func sumFor(key uint64) checksum.State {
	return checksum.State{Mod: key * 3, Par: key ^ 0xabcdef}
}

// insertAll inserts keys [0,n) from a kernel, one per block (the LP usage
// pattern), then returns the launch result.
func insertAll(dev *gpusim.Device, s Store, n int) gpusim.LaunchResult {
	return dev.Launch("insert", gpusim.D1(n), gpusim.D1(32), func(b *gpusim.Block) {
		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear == 0 {
				s.Insert(t, uint64(b.LinearIdx), sumFor(uint64(b.LinearIdx)))
			}
		})
	})
}

// lookupAll verifies all keys are present with correct checksums.
func lookupAll(t *testing.T, dev *gpusim.Device, s Store, n int) {
	t.Helper()
	missing := 0
	wrong := 0
	dev.Launch("lookup", gpusim.D1(n), gpusim.D1(32), func(b *gpusim.Block) {
		b.ForAll(func(th *gpusim.Thread) {
			if th.Linear != 0 {
				return
			}
			got, ok := s.Lookup(th, uint64(b.LinearIdx))
			if !ok {
				missing++
				return
			}
			if got != sumFor(uint64(b.LinearIdx)) {
				wrong++
			}
		})
	})
	if missing != 0 || wrong != 0 {
		t.Fatalf("%v/%v lookup: %d missing, %d wrong of %d", s.Kind(), n, missing, wrong, n)
	}
}

func allConfigs() []Config {
	var cfgs []Config
	for _, kind := range []Kind{Quad, Cuckoo, GlobalArray} {
		for _, mode := range []LockMode{LockFree, LockBased, NoAtomic} {
			cfgs = append(cfgs, Config{Kind: kind, LockMode: mode, NumKeys: 500, Seed: 7})
		}
	}
	return cfgs
}

func TestInsertLookupAllVariants(t *testing.T) {
	for _, cfg := range allConfigs() {
		name := fmt.Sprintf("%v-%v", cfg.Kind, cfg.LockMode)
		t.Run(name, func(t *testing.T) {
			dev := newTestDevice()
			s := New(dev, "tbl", cfg)
			insertAll(dev, s, cfg.NumKeys)
			lookupAll(t, dev, s, cfg.NumKeys)
			if s.Stats().Inserts != int64(cfg.NumKeys) {
				t.Errorf("Inserts = %d, want %d", s.Stats().Inserts, cfg.NumKeys)
			}
		})
	}
}

func TestKindAndModeStrings(t *testing.T) {
	if Quad.String() != "quad" || Cuckoo.String() != "cuckoo" || GlobalArray.String() != "global-array" {
		t.Error("Kind strings wrong")
	}
	if LockFree.String() != "lock-free" || LockBased.String() != "lock-based" || NoAtomic.String() != "no-atomic" {
		t.Error("LockMode strings wrong")
	}
	if Kind(9).String() == "" || LockMode(9).String() == "" {
		t.Error("unknown enums should still format")
	}
}

func TestNewValidation(t *testing.T) {
	dev := newTestDevice()
	t.Run("bad numkeys", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		New(dev, "bad", Config{Kind: Quad, NumKeys: 0})
	})
	t.Run("bad kind", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		New(dev, "bad", Config{Kind: Kind(42), NumKeys: 4})
	})
}

func TestQuadCollisionsCounted(t *testing.T) {
	dev := newTestDevice()
	s := New(dev, "tbl", Config{Kind: Quad, NumKeys: 2000, Seed: 3})
	insertAll(dev, s, 2000)
	st := s.Stats()
	if st.Collisions == 0 {
		t.Error("2000 keys at ~0.6 load factor should produce collisions")
	}
	if st.Probes < st.Inserts {
		t.Errorf("Probes %d < Inserts %d", st.Probes, st.Inserts)
	}
	if st.MaxProbe == 0 {
		t.Error("MaxProbe should be nonzero when collisions occur")
	}
}

func TestPerfectSlotEliminatesCollisions(t *testing.T) {
	for _, kind := range []Kind{Quad, Cuckoo} {
		t.Run(kind.String(), func(t *testing.T) {
			dev := newTestDevice()
			s := New(dev, "tbl", Config{Kind: kind, NumKeys: 2000, Seed: 3, PerfectSlot: true})
			insertAll(dev, s, 2000)
			if c := s.Stats().Collisions; c != 0 {
				t.Errorf("PerfectSlot produced %d collisions", c)
			}
			lookupAll(t, dev, s, 2000)
		})
	}
}

func TestGlobalArrayNeverCollides(t *testing.T) {
	dev := newTestDevice()
	s := New(dev, "tbl", Config{Kind: GlobalArray, NumKeys: 5000})
	res := insertAll(dev, s, 5000)
	st := s.Stats()
	if st.Collisions != 0 || st.RaceRedos != 0 || st.Rehashes != 0 {
		t.Errorf("global array stats should be clean: %+v", st)
	}
	if res.AtomicStallCycles != 0 || res.LockStallCycles != 0 {
		t.Errorf("global array insertions should not stall: %+v", res)
	}
}

func TestGlobalArrayBoundsPanic(t *testing.T) {
	dev := newTestDevice()
	s := New(dev, "tbl", Config{Kind: GlobalArray, NumKeys: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range key")
		}
	}()
	dev.Launch("bad", gpusim.D1(1), gpusim.D1(32), func(b *gpusim.Block) {
		b.ForAll(func(th *gpusim.Thread) {
			if th.Linear == 0 {
				s.Insert(th, 99, checksum.State{})
			}
		})
	})
}

func TestSpaceOverheadOrdering(t *testing.T) {
	dev := newTestDevice()
	n := 1000
	quad := New(dev, "q", Config{Kind: Quad, NumKeys: n})
	cuckoo := New(dev, "c", Config{Kind: Cuckoo, NumKeys: n})
	ga := New(dev, "g", Config{Kind: GlobalArray, NumKeys: n})
	if !(ga.TableBytes() < quad.TableBytes() && ga.TableBytes() < cuckoo.TableBytes()) {
		t.Errorf("global array must be the smallest: ga=%d quad=%d cuckoo=%d",
			ga.TableBytes(), quad.TableBytes(), cuckoo.TableBytes())
	}
	// Global array is the minimum: exactly two words per key.
	if ga.TableBytes() != int64(n*16) {
		t.Errorf("global array bytes = %d, want %d", ga.TableBytes(), n*16)
	}
}

func TestLockBasedSlowerThanLockFree(t *testing.T) {
	for _, kind := range []Kind{Quad, Cuckoo} {
		t.Run(kind.String(), func(t *testing.T) {
			n := 2000
			devF := newTestDevice()
			free := New(devF, "tbl", Config{Kind: kind, NumKeys: n, Seed: 5})
			resF := insertAll(devF, free, n)

			devL := newTestDevice()
			locked := New(devL, "tbl", Config{Kind: kind, NumKeys: n, Seed: 5, LockMode: LockBased})
			resL := insertAll(devL, locked, n)

			if resL.Cycles <= resF.Cycles {
				t.Errorf("lock-based (%d cycles) not slower than lock-free (%d)", resL.Cycles, resF.Cycles)
			}
			if resL.LockStallCycles == 0 {
				t.Error("lock-based run recorded no lock stalls")
			}
		})
	}
}

func TestNoAtomicSlowerThanLockFree(t *testing.T) {
	for _, kind := range []Kind{Quad, Cuckoo} {
		t.Run(kind.String(), func(t *testing.T) {
			n := 4000
			devF := newTestDevice()
			free := New(devF, "tbl", Config{Kind: kind, NumKeys: n, Seed: 5})
			resF := insertAll(devF, free, n)

			devN := newTestDevice()
			noat := New(devN, "tbl", Config{Kind: kind, NumKeys: n, Seed: 5, LockMode: NoAtomic})
			resN := insertAll(devN, noat, n)

			if resN.Cycles <= resF.Cycles {
				t.Errorf("no-atomic (%d cycles) not slower than lock-free (%d)", resN.Cycles, resF.Cycles)
			}
		})
	}
}

func TestCuckooEvictionChainRelocates(t *testing.T) {
	// Force evictions by inserting enough keys; every key must remain
	// findable afterwards even though incumbents were displaced.
	dev := newTestDevice()
	n := 3000
	s := New(dev, "tbl", Config{Kind: Cuckoo, NumKeys: n, Seed: 11})
	insertAll(dev, s, n)
	if s.Stats().Collisions == 0 {
		t.Error("expected some cuckoo evictions at 50% load")
	}
	lookupAll(t, dev, s, n)
}

func TestLookupMissingKey(t *testing.T) {
	for _, kind := range []Kind{Quad, Cuckoo} {
		t.Run(kind.String(), func(t *testing.T) {
			dev := newTestDevice()
			s := New(dev, "tbl", Config{Kind: kind, NumKeys: 100, Seed: 1})
			insertAll(dev, s, 50) // keys 0..49 only
			found := make(map[uint64]bool)
			dev.Launch("miss", gpusim.D1(100), gpusim.D1(32), func(b *gpusim.Block) {
				b.ForAll(func(th *gpusim.Thread) {
					if th.Linear == 0 {
						_, ok := s.Lookup(th, uint64(b.LinearIdx))
						found[uint64(b.LinearIdx)] = ok
					}
				})
			})
			for k := uint64(0); k < 100; k++ {
				if want := k < 50; found[k] != want {
					t.Errorf("Lookup(%d) ok=%v, want %v", k, found[k], want)
				}
			}
		})
	}
}

func TestClearEmptiesStore(t *testing.T) {
	for _, kind := range []Kind{Quad, Cuckoo, GlobalArray} {
		t.Run(kind.String(), func(t *testing.T) {
			dev := newTestDevice()
			s := New(dev, "tbl", Config{Kind: kind, NumKeys: 64, Seed: 1})
			insertAll(dev, s, 64)
			s.Clear()
			dev.Launch("check", gpusim.D1(1), gpusim.D1(32), func(b *gpusim.Block) {
				b.ForAll(func(th *gpusim.Thread) {
					if th.Linear != 0 {
						return
					}
					got, ok := s.Lookup(th, 5)
					if kind == GlobalArray {
						// Structurally always ok; contents must be zeroed.
						if got != (checksum.State{}) {
							t.Errorf("global array entry not cleared: %+v", got)
						}
					} else if ok {
						t.Error("key still present after Clear")
					}
				})
			})
		})
	}
}

func TestChecksumTrafficTagged(t *testing.T) {
	dev := newTestDevice()
	s := New(dev, "tbl", Config{Kind: GlobalArray, NumKeys: 256})
	insertAll(dev, s, 256)
	stats := dev.Mem().Stats()
	if stats.Stores[memsim.AccessChecksum] == 0 {
		t.Error("checksum stores not tagged as checksum traffic")
	}
}

func TestTableSurvivesCrashPartially(t *testing.T) {
	// After a crash, lookups must read durable state: keys whose lines
	// were never evicted disappear; whatever remains must carry correct
	// checksums (never garbage).
	dev := newTestDevice()
	n := 2000
	s := New(dev, "tbl", Config{Kind: Quad, NumKeys: n, Seed: 9})
	insertAll(dev, s, n)
	dev.Mem().Crash()
	var present, wrong int
	dev.Launch("post-crash", gpusim.D1(n), gpusim.D1(32), func(b *gpusim.Block) {
		b.ForAll(func(th *gpusim.Thread) {
			if th.Linear != 0 {
				return
			}
			got, ok := s.Lookup(th, uint64(b.LinearIdx))
			if !ok {
				return
			}
			present++
			if got != sumFor(uint64(b.LinearIdx)) {
				// A key word may persist while its payload did not (or
				// vice versa) — that is precisely the failure LP's
				// validation catches. Count but do not fail.
				wrong++
			}
		})
	})
	if present == 0 {
		t.Skip("no lines evicted before crash at this scale; nothing to check")
	}
	t.Logf("after crash: %d/%d present, %d with torn payloads", present, n, wrong)
}

// TestPropertyInsertLookupRoundTrip: for arbitrary small key sets and
// seeds, every inserted key is found with its exact checksum (lock-free).
func TestPropertyInsertLookupRoundTrip(t *testing.T) {
	f := func(seed uint64, kindSel uint8, nRaw uint16) bool {
		n := int(nRaw)%300 + 2
		kind := []Kind{Quad, Cuckoo, GlobalArray}[int(kindSel)%3]
		dev := newTestDevice()
		s := New(dev, "tbl", Config{Kind: kind, NumKeys: n, Seed: seed})
		insertAll(dev, s, n)
		ok := true
		dev.Launch("verify", gpusim.D1(n), gpusim.D1(32), func(b *gpusim.Block) {
			b.ForAll(func(th *gpusim.Thread) {
				if th.Linear != 0 {
					return
				}
				got, found := s.Lookup(th, uint64(b.LinearIdx))
				if !found || got != sumFor(uint64(b.LinearIdx)) {
					ok = false
				}
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
