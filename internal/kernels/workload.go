// Package kernels implements the paper's benchmark suite (Table I) as
// gpusim workloads: tiled matrix multiplication (TMM) and the Parboil
// kernels TPACF, MRI-GRIDDING, SPMV, SAD, HISTO, CUTCP and MRI-Q, plus
// the MEGA-KV key-value workloads of §VII-4.
//
// Every workload provides a single kernel body that serves both as the
// no-LP baseline (nil runtime) and as the LP-protected variant (explicit
// Region.Update calls next to each persistent store, the Listing 2
// pattern), a recompute function for crash validation, a host golden
// reference for output verification, and deterministic synthetic inputs.
//
// The paper runs Parboil's "biggest inputs" on a V100; inputs here are
// scaled-down synthetic equivalents whose thread-block counts preserve
// the paper's ordering (SAD ≫ MRI-GRIDDING ≫ TMM ≫ SPMV ≫ MRI-Q ≫ TPACF
// ≫ CUTCP ≫ HISTO), because block count is the variable that drives
// every contention effect in Tables II–IV. The Scale parameter grows the
// inputs for longer runs.
package kernels

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// Info carries the Table I row for a workload.
type Info struct {
	// Description is a one-line summary of the computation.
	Description string
	// Suite is the origin of the benchmark in the paper.
	Suite string
	// Bottleneck is the paper's classification: "inst throughput" or
	// "bandwidth".
	Bottleneck string
	// Input describes the synthetic input configuration.
	Input string
}

// Workload is a benchmark that can run bare or under Lazy Persistency.
type Workload interface {
	// Name returns the benchmark's short name (lowercase).
	Name() string
	// Info returns the Table I metadata.
	Info() Info
	// Setup allocates and durably initializes inputs and outputs on a
	// fresh device, and computes the host golden reference.
	Setup(dev *gpusim.Device)
	// Geometry returns the launch dimensions.
	Geometry() (grid, block gpusim.Dim3)
	// Kernel returns the kernel body; pass nil for the baseline, or an
	// LP runtime built for this workload's geometry.
	Kernel(lp *core.LP) gpusim.KernelFunc
	// Recompute returns the crash-validation function that refolds each
	// block's persistent outputs from memory.
	Recompute() core.RecomputeFunc
	// Verify compares the coherent device output with the golden
	// reference, returning a descriptive error on the first mismatch.
	Verify() error
	// PersistBytes is the persistent application output footprint, the
	// denominator of the Table V space-overhead column.
	PersistBytes() int64
	// Outputs returns the persistent output regions — what a persistency
	// runtime (LP's Instrument or the EP baseline) must protect.
	Outputs() []memsim.Region
}

// Finalizer is implemented by workloads that need a post-processing
// kernel after the main (LP-protected) kernel — e.g. HISTO's saturating
// merge. The harness runs it identically in baseline and LP runs.
type Finalizer interface {
	FinalizeKernel() (name string, grid, block gpusim.Dim3, k gpusim.KernelFunc)
}

// Names lists the eight Table I benchmarks in the paper's order.
var Names = []string{"tmm", "tpacf", "mri-gridding", "spmv", "sad", "histo", "cutcp", "mri-q"}

// New constructs the named workload at the given scale (1 = default;
// larger values grow the input). Panics on an unknown name.
func New(name string, scale int) Workload {
	if scale < 1 {
		scale = 1
	}
	switch name {
	case "tmm":
		return newTMM(scale)
	case "tpacf":
		return newTPACF(scale)
	case "mri-gridding":
		return newMRIGridding(scale)
	case "spmv":
		return newSPMV(scale)
	case "sad":
		return newSAD(scale)
	case "histo":
		return newHISTO(scale)
	case "cutcp":
		return newCUTCP(scale)
	case "mri-q":
		return newMRIQ(scale)
	case "megakv-search", "megakv-insert", "megakv-delete", "megakv-mixed":
		return newMegaKV(name, scale)
	}
	panic(fmt.Sprintf("kernels: unknown workload %q", name))
}

// Suite returns the eight Table I workloads at the given scale.
func Suite(scale int) []Workload {
	out := make([]Workload, len(Names))
	for i, n := range Names {
		out[i] = New(n, scale)
	}
	return out
}

// prng is SplitMix64 — deterministic, seedable input generation without
// global state.
type prng struct{ s uint64 }

func newPrng(seed uint64) *prng { return &prng{s: seed} }

func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f32 returns a float in [0,1).
func (p *prng) f32() float32 {
	return float32(p.next()>>40) / float32(1<<24)
}

// intn returns an int in [0,n).
func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}

// mismatchF32 formats a float comparison error.
func mismatchF32(name string, i int, got, want float32) error {
	return fmt.Errorf("%s: output[%d] = %v, want %v", name, i, got, want)
}

// mismatchI32 formats an int comparison error.
func mismatchI32(name string, i int, got, want int32) error {
	return fmt.Errorf("%s: output[%d] = %d, want %d", name, i, got, want)
}
