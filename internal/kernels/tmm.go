package kernels

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// tmm is tiled matrix multiplication (Listing 1/2 of the paper): C = A×B
// with square tiles staged through shared memory. The LP region is one
// thread block computing one C tile; each thread folds its C element into
// the block checksum right where it stores it.
type tmm struct {
	n    int // matrix dimension
	tile int

	dev     *gpusim.Device
	a, b, c memsim.Region
	golden  []float32
}

func newTMM(scale int) *tmm {
	// 8x8 tiles over a 256x256 matrix = 1024 blocks at scale 1.
	return &tmm{n: 256 * scale, tile: 8}
}

func (w *tmm) Name() string { return "tmm" }

func (w *tmm) Info() Info {
	return Info{
		Description: "tiled dense matrix multiplication",
		Suite:       "[18]",
		Bottleneck:  "inst throughput",
		Input:       fmt.Sprintf("%dx%d float32, %dx%d tiles", w.n, w.n, w.tile, w.tile),
	}
}

func (w *tmm) Geometry() (gpusim.Dim3, gpusim.Dim3) {
	nt := w.n / w.tile
	return gpusim.D2(nt, nt), gpusim.D2(w.tile, w.tile)
}

func (w *tmm) Setup(dev *gpusim.Device) {
	w.dev = dev
	n := w.n
	w.a = dev.Alloc("tmm.a", n*n*4)
	w.b = dev.Alloc("tmm.b", n*n*4)
	w.c = dev.Alloc("tmm.c", n*n*4)

	rng := newPrng(0x7a3d)
	av := make([]float32, n*n)
	bv := make([]float32, n*n)
	for i := range av {
		av[i] = rng.f32()
		bv[i] = rng.f32()
	}
	w.a.HostWriteF32s(av)
	w.b.HostWriteF32s(bv)
	w.c.HostZero()

	// Host golden, accumulating in the kernel's k-ascending order so
	// float32 results match bit for bit.
	w.golden = make([]float32, n*n)
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			var s float32
			for k := 0; k < n; k++ {
				s += av[row*n+k] * bv[k*n+col]
			}
			w.golden[row*n+col] = s
		}
	}
}

func (w *tmm) Kernel(lp *core.LP) gpusim.KernelFunc {
	n, ts := w.n, w.tile
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		tileA := b.SharedF32("A", ts*ts)
		tileB := b.SharedF32("B", ts*ts)
		acc := make([]float32, ts*ts) // per-thread running sum

		for i := 0; i < n/ts; i++ {
			b.ForAll(func(t *gpusim.Thread) {
				ty, tx := t.Idx.Y, t.Idx.X
				row := b.Idx.Y*ts + ty
				col := b.Idx.X*ts + tx
				tileA[ty*ts+tx] = t.LoadF32(w.a, row*n+i*ts+tx)
				tileB[ty*ts+tx] = t.LoadF32(w.b, (i*ts+ty)*n+col)
				t.Op(6) // address arithmetic + shared stores
			})
			b.ForAll(func(t *gpusim.Thread) {
				ty, tx := t.Idx.Y, t.Idx.X
				s := acc[t.Linear]
				for j := 0; j < ts; j++ {
					s += tileA[ty*ts+j] * tileB[j*ts+tx]
				}
				t.Op(3 * ts) // fma + two shared loads per step
				acc[t.Linear] = s
			})
		}
		b.ForAll(func(t *gpusim.Thread) {
			row := b.Idx.Y*ts + t.Idx.Y
			col := b.Idx.X*ts + t.Idx.X
			v := acc[t.Linear]
			t.StoreF32(w.c, row*n+col, v)
			r.UpdateF32(t, v)
		})
		r.Commit()
	}
}

func (w *tmm) Recompute() core.RecomputeFunc {
	n, ts := w.n, w.tile
	return func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			row := b.Idx.Y*ts + t.Idx.Y
			col := b.Idx.X*ts + t.Idx.X
			r.UpdateF32(t, t.LoadF32(w.c, row*n+col))
		})
	}
}

func (w *tmm) Verify() error {
	got := w.c.PeekF32s(w.n * w.n)
	for i := range w.golden {
		if got[i] != w.golden[i] {
			return mismatchF32("tmm", i, got[i], w.golden[i])
		}
	}
	return nil
}

func (w *tmm) PersistBytes() int64 { return int64(w.n) * int64(w.n) * 4 }

// Outputs implements Workload.
func (w *tmm) Outputs() []memsim.Region { return []memsim.Region{w.c} }
