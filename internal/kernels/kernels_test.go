package kernels

import (
	"testing"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

func newTestDevice() *gpusim.Device {
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 16
	return gpusim.MustNew(cfg, memsim.MustNew(memsim.DefaultConfig()))
}

// allNames covers the eight suite benchmarks plus the MEGA-KV ops.
var allNames = append(append([]string{}, Names...),
	"megakv-search", "megakv-insert", "megakv-delete", "megakv-mixed")

// runFull runs the workload's kernel (and finalize, if any) and returns
// the main launch result.
func runFull(dev *gpusim.Device, w Workload, lp *core.LP) gpusim.LaunchResult {
	grid, blk := w.Geometry()
	res := dev.Launch(w.Name(), grid, blk, w.Kernel(lp))
	if f, ok := w.(Finalizer); ok {
		name, fg, fb, k := f.FinalizeKernel()
		dev.Launch(name, fg, fb, k)
	}
	return res
}

func TestBaselineOutputsMatchGolden(t *testing.T) {
	for _, name := range allNames {
		t.Run(name, func(t *testing.T) {
			dev := newTestDevice()
			w := New(name, 1)
			w.Setup(dev)
			res := runFull(dev, w, nil)
			if res.Blocks == 0 || res.Cycles == 0 {
				t.Fatalf("empty launch: %+v", res)
			}
			if err := w.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLPOutputsMatchGoldenAndValidate(t *testing.T) {
	for _, name := range allNames {
		t.Run(name, func(t *testing.T) {
			dev := newTestDevice()
			w := New(name, 1)
			w.Setup(dev)
			grid, blk := w.Geometry()
			lp := core.New(dev, core.DefaultConfig(), grid, blk)
			runFull(dev, w, lp)
			if err := w.Verify(); err != nil {
				t.Fatalf("LP run broke output: %v", err)
			}
			failed, _, _ := lp.Validate(w.Recompute())
			if len(failed) != 0 {
				t.Fatalf("clean LP run failed validation for %d/%d blocks", len(failed), grid.Size())
			}
		})
	}
}

func TestLPOverheadIsBounded(t *testing.T) {
	// The LP-protected run must be slower than baseline (it does more
	// work) but not catastrophically so with the paper's final design.
	for _, name := range Names {
		t.Run(name, func(t *testing.T) {
			devB := newTestDevice()
			wb := New(name, 1)
			wb.Setup(devB)
			base := runFull(devB, wb, nil)

			devL := newTestDevice()
			wl := New(name, 1)
			wl.Setup(devL)
			grid, blk := wl.Geometry()
			lp := core.New(devL, core.DefaultConfig(), grid, blk)
			lpRes := runFull(devL, wl, lp)

			over := float64(lpRes.Cycles)/float64(base.Cycles) - 1
			if over < 0 {
				t.Errorf("LP run faster than baseline: %.2f%%", over*100)
			}
			if over > 0.30 {
				t.Errorf("global-array LP overhead %.1f%% exceeds 30%% bound", over*100)
			}
			t.Logf("%s: baseline %d cycles, LP %d cycles, overhead %.2f%%", name, base.Cycles, lpRes.Cycles, over*100)
		})
	}
}

func TestCrashRecoveryPerWorkload(t *testing.T) {
	// End-to-end §IV-A flow for every workload in the suite.
	for _, name := range allNames {
		t.Run(name, func(t *testing.T) {
			dev := newTestDevice()
			w := New(name, 1)
			w.Setup(dev)
			grid, blk := w.Geometry()
			lp := core.New(dev, core.DefaultConfig(), grid, blk)
			kernel := w.Kernel(lp)
			dev.Launch(w.Name(), grid, blk, kernel)

			dev.Mem().Crash()

			rep, err := lp.ValidateAndRecover(kernel, w.Recompute(), 4)
			if err != nil {
				t.Fatalf("recovery failed: %v (%v)", err, rep)
			}
			if f, ok := w.(Finalizer); ok {
				fname, fg, fb, k := f.FinalizeKernel()
				dev.Launch(fname, fg, fb, k)
			}
			if err := w.Verify(); err != nil {
				t.Fatalf("output wrong after crash recovery: %v", err)
			}
			t.Logf("%s: %v", name, rep)
		})
	}
}

func TestBlockCountOrderingMatchesPaper(t *testing.T) {
	// Table III's contention story depends on the relative block counts;
	// the synthetic inputs must preserve the paper's ordering.
	counts := map[string]int{}
	for _, name := range Names {
		w := New(name, 1)
		grid, _ := w.Geometry()
		counts[name] = grid.Size()
	}
	order := []string{"sad", "mri-gridding", "tmm", "spmv", "mri-q", "tpacf", "cutcp", "histo"}
	for i := 1; i < len(order); i++ {
		if counts[order[i-1]] <= counts[order[i]] {
			t.Errorf("block count ordering violated: %s (%d) <= %s (%d)",
				order[i-1], counts[order[i-1]], order[i], counts[order[i]])
		}
	}
	t.Logf("block counts: %v", counts)
}

func TestRegistry(t *testing.T) {
	if len(Suite(1)) != 8 {
		t.Fatal("Suite should return the eight Table I workloads")
	}
	for _, name := range allNames {
		w := New(name, 1)
		if w.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, w.Name())
		}
		info := w.Info()
		if info.Description == "" || info.Bottleneck == "" || info.Input == "" {
			t.Errorf("%s: incomplete Info: %+v", name, info)
		}
		if w.PersistBytes() <= 0 {
			t.Errorf("%s: PersistBytes = %d", name, w.PersistBytes())
		}
	}
	t.Run("unknown panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		New("nope", 1)
	})
	t.Run("scale clamped", func(t *testing.T) {
		if New("tmm", 0) == nil {
			t.Fatal("scale 0 should clamp to 1")
		}
	})
}

func TestScaleGrowsWork(t *testing.T) {
	for _, name := range []string{"tmm", "spmv", "tpacf"} {
		w1 := New(name, 1)
		w2 := New(name, 2)
		g1, b1 := w1.Geometry()
		g2, b2 := w2.Geometry()
		if g2.Size()*b2.Size() <= g1.Size()*b1.Size() {
			t.Errorf("%s: scale 2 thread count %d not larger than scale 1's %d",
				name, g2.Size()*b2.Size(), g1.Size()*b1.Size())
		}
	}
	// HISTO keeps the paper's 42 blocks and grows per-thread work instead.
	h1, h2 := newHISTO(1), newHISTO(2)
	if h2.pixels() <= h1.pixels() {
		t.Errorf("histo: scale 2 pixels %d not larger than scale 1's %d", h2.pixels(), h1.pixels())
	}
}

func TestSADDisplacementDecode(t *testing.T) {
	w := newSAD(1)
	seen := map[[2]int]bool{}
	for p := 0; p < w.positions(); p++ {
		dx, dy := w.dispOf(p)
		if dx < -8 || dx >= 8 || dy < -8 || dy >= 8 {
			t.Fatalf("position %d decodes out of window: (%d,%d)", p, dx, dy)
		}
		seen[[2]int{dx, dy}] = true
	}
	if len(seen) != w.positions() {
		t.Errorf("displacements not unique: %d of %d", len(seen), w.positions())
	}
}

func TestTPACFBinRange(t *testing.T) {
	w := newTPACF(1)
	for _, dot := range []float32{-1.5, -1, -0.999, 0, 0.5, 0.999, 1, 1.5} {
		b := w.binOf(dot)
		if b < 0 || b >= w.nbins {
			t.Errorf("binOf(%v) = %d out of range", dot, b)
		}
	}
}

func TestGridWeightProperties(t *testing.T) {
	if gridWeight(1) != 0 || gridWeight(2) != 0 {
		t.Error("weight must vanish at and beyond radius 1")
	}
	if gridWeight(0) != 1 {
		t.Error("weight at distance 0 should be 1")
	}
	if !(gridWeight(0.1) > gridWeight(0.5)) {
		t.Error("weight must decrease with distance")
	}
}
