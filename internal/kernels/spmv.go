package kernels

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// spmv is sparse matrix–dense vector multiplication over a CSR matrix
// with one thread per row — the Parboil formulation. It streams the
// matrix once, making it bandwidth bound (Table I).
type spmv struct {
	rows      int
	nnzPerRow int

	dev    *gpusim.Device
	rowPtr memsim.Region // int32, rows+1
	colIdx memsim.Region // int32, nnz
	vals   memsim.Region // float32, nnz
	x      memsim.Region // float32, rows
	y      memsim.Region // float32, rows

	golden []float32
}

const spmvBlockThreads = 64

func newSPMV(scale int) *spmv {
	// 384 blocks x 64 threads at scale 1.
	return &spmv{rows: 384 * spmvBlockThreads * scale, nnzPerRow: 8}
}

func (w *spmv) Name() string { return "spmv" }

func (w *spmv) Info() Info {
	return Info{
		Description: "sparse matrix-dense vector multiplication (CSR, row per thread)",
		Suite:       "Parboil",
		Bottleneck:  "bandwidth",
		Input:       fmt.Sprintf("%d rows, %d nnz/row", w.rows, w.nnzPerRow),
	}
}

func (w *spmv) Geometry() (gpusim.Dim3, gpusim.Dim3) {
	return gpusim.D1(w.rows / spmvBlockThreads), gpusim.D1(spmvBlockThreads)
}

func (w *spmv) Setup(dev *gpusim.Device) {
	w.dev = dev
	rows, nnz := w.rows, w.rows*w.nnzPerRow
	w.rowPtr = dev.Alloc("spmv.rowptr", (rows+1)*4)
	w.colIdx = dev.Alloc("spmv.colidx", nnz*4)
	w.vals = dev.Alloc("spmv.vals", nnz*4)
	w.x = dev.Alloc("spmv.x", rows*4)
	w.y = dev.Alloc("spmv.y", rows*4)

	rng := newPrng(0x5b17)
	rp := make([]int32, rows+1)
	ci := make([]int32, nnz)
	vv := make([]float32, nnz)
	xv := make([]float32, rows)
	for i := 0; i <= rows; i++ {
		rp[i] = int32(i * w.nnzPerRow)
	}
	for i := range ci {
		ci[i] = int32(rng.intn(rows))
		vv[i] = rng.f32()
	}
	for i := range xv {
		xv[i] = rng.f32()
	}
	w.rowPtr.HostWriteI32s(rp)
	w.colIdx.HostWriteI32s(ci)
	w.vals.HostWriteF32s(vv)
	w.x.HostWriteF32s(xv)
	w.y.HostZero()

	w.golden = make([]float32, rows)
	for row := 0; row < rows; row++ {
		var s float32
		for k := rp[row]; k < rp[row+1]; k++ {
			s += vv[k] * xv[ci[k]]
		}
		w.golden[row] = s
	}
}

func (w *spmv) Kernel(lp *core.LP) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			row := t.GlobalLinear()
			lo := t.LoadI32(w.rowPtr, row)
			hi := t.LoadI32(w.rowPtr, row+1)
			var s float32
			for k := lo; k < hi; k++ {
				c := t.LoadI32(w.colIdx, int(k))
				v := t.LoadF32(w.vals, int(k))
				xv := t.LoadF32(w.x, int(c))
				s += v * xv
				t.Op(3)
			}
			t.StoreF32(w.y, row, s)
			r.UpdateF32(t, s)
		})
		r.Commit()
	}
}

func (w *spmv) Recompute() core.RecomputeFunc {
	return func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			r.UpdateF32(t, t.LoadF32(w.y, t.GlobalLinear()))
		})
	}
}

func (w *spmv) Verify() error {
	got := w.y.PeekF32s(w.rows)
	for i := range w.golden {
		if got[i] != w.golden[i] {
			return mismatchF32("spmv", i, got[i], w.golden[i])
		}
	}
	return nil
}

func (w *spmv) PersistBytes() int64 { return int64(w.rows) * 4 }

// Outputs implements Workload.
func (w *spmv) Outputs() []memsim.Region { return []memsim.Region{w.y} }
