package kernels

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// sad is the sum-of-absolute-differences motion-estimation kernel: for
// every 4x4 macroblock of the current frame, compute the SAD against the
// reference frame at each of 256 candidate displacements. One thread
// block handles one (macroblock, 32-displacement group) pair, which gives
// the suite's largest block count with tiny blocks — the configuration
// that stresses checksum-insertion scalability hardest (Table III).
type sad struct {
	dim    int // frame is dim x dim pixels
	mb     int // macroblock edge
	posPer int // displacements per block
	groups int // displacement groups per macroblock

	dev      *gpusim.Device
	cur, ref memsim.Region // int32 pixel values
	out      memsim.Region // int32 SADs, one per (4x4 mb, position)
	out8     memsim.Region // int32 SADs for 8x8 macroblocks (combined)

	golden  []int32
	golden8 []int32
}

func newSAD(scale int) *sad {
	// 128x128 frame, 4x4 macroblocks (1024), 256 positions in 8 groups
	// of 32 -> 8192 blocks of 32 threads at scale 1.
	return &sad{dim: 128 * scale, mb: 4, posPer: 32, groups: 8}
}

func (w *sad) numMBs() int     { return (w.dim / w.mb) * (w.dim / w.mb) }
func (w *sad) numMB8s() int    { return w.numMBs() / 4 }
func (w *sad) positions() int  { return w.posPer * w.groups }
func (w *sad) searchEdge() int { return 16 } // 16x16 displacement grid = 256 positions

func (w *sad) Name() string { return "sad" }

func (w *sad) Info() Info {
	return Info{
		Description: "sum of absolute differences motion estimation",
		Suite:       "Parboil",
		Bottleneck:  "bandwidth",
		Input:       fmt.Sprintf("%dx%d frame, %dx%d macroblocks, %d positions", w.dim, w.dim, w.mb, w.mb, w.positions()),
	}
}

func (w *sad) Geometry() (gpusim.Dim3, gpusim.Dim3) {
	return gpusim.D2(w.groups, w.numMBs()), gpusim.D1(w.posPer)
}

// dispOf decodes displacement p (0..255) into a (dx, dy) offset in
// [-8, 8) around the macroblock origin.
func (w *sad) dispOf(p int) (int, int) {
	e := w.searchEdge()
	return p%e - e/2, p/e - e/2
}

func (w *sad) pixel(v []int32, x, y int) int32 {
	// Clamp to frame borders, as video codecs do for out-of-frame refs.
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= w.dim {
		x = w.dim - 1
	}
	if y >= w.dim {
		y = w.dim - 1
	}
	return v[y*w.dim+x]
}

func (w *sad) Setup(dev *gpusim.Device) {
	w.dev = dev
	n := w.dim * w.dim
	w.cur = dev.Alloc("sad.cur", n*4)
	w.ref = dev.Alloc("sad.ref", n*4)
	w.out = dev.Alloc("sad.out", w.numMBs()*w.positions()*4)
	w.out8 = dev.Alloc("sad.out8", w.numMB8s()*w.positions()*4)

	rng := newPrng(0x5ad0)
	cv := make([]int32, n)
	rv := make([]int32, n)
	for i := range cv {
		cv[i] = int32(rng.intn(256))
		// The reference is the current frame plus noise, so SADs are
		// small for near-zero displacements (realistic motion search).
		rv[i] = cv[i] + int32(rng.intn(17)) - 8
		if rv[i] < 0 {
			rv[i] = 0
		}
		if rv[i] > 255 {
			rv[i] = 255
		}
	}
	w.cur.HostWriteI32s(cv)
	w.ref.HostWriteI32s(rv)
	w.out.HostZero()
	w.out8.HostZero()

	mbsPerRow := w.dim / w.mb
	w.golden = make([]int32, w.numMBs()*w.positions())
	for mbi := 0; mbi < w.numMBs(); mbi++ {
		ox := (mbi % mbsPerRow) * w.mb
		oy := (mbi / mbsPerRow) * w.mb
		for p := 0; p < w.positions(); p++ {
			dx, dy := w.dispOf(p)
			var s int32
			for py := 0; py < w.mb; py++ {
				for px := 0; px < w.mb; px++ {
					d := w.pixel(cv, ox+px, oy+py) - w.pixel(rv, ox+px+dx, oy+py+dy)
					if d < 0 {
						d = -d
					}
					s += d
				}
			}
			w.golden[mbi*w.positions()+p] = s
		}
	}

	// 8x8 macroblock SADs combine four 4x4 children at each displacement
	// (the hierarchical outputs the real SAD benchmark produces).
	w.golden8 = make([]int32, w.numMB8s()*w.positions())
	mb8PerRow := mbsPerRow / 2
	for mb8 := 0; mb8 < w.numMB8s(); mb8++ {
		x8, y8 := mb8%mb8PerRow, mb8/mb8PerRow
		for p := 0; p < w.positions(); p++ {
			var s int32
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					child := (y8*2+dy)*mbsPerRow + x8*2 + dx
					s += w.golden[child*w.positions()+p]
				}
			}
			w.golden8[mb8*w.positions()+p] = s
		}
	}
}

// FinalizeKernel combines the 4x4 SADs into 8x8 macroblock SADs, as the
// hierarchical motion-estimation pipeline requires. It runs identically
// in baseline and LP measurements.
func (w *sad) FinalizeKernel() (string, gpusim.Dim3, gpusim.Dim3, gpusim.KernelFunc) {
	mbsPerRow := w.dim / w.mb
	mb8PerRow := mbsPerRow / 2
	const combineThreads = 64
	k := func(b *gpusim.Block) {
		mb8 := b.LinearIdx
		x8, y8 := mb8%mb8PerRow, mb8/mb8PerRow
		b.ForAll(func(t *gpusim.Thread) {
			for p := t.Linear; p < w.positions(); p += combineThreads {
				var s int32
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						child := (y8*2+dy)*mbsPerRow + x8*2 + dx
						s += t.LoadI32(w.out, child*w.positions()+p)
						t.Op(2)
					}
				}
				t.StoreI32(w.out8, mb8*w.positions()+p, s)
			}
		})
	}
	return "sad-combine8", gpusim.D1(w.numMB8s()), gpusim.D1(combineThreads), k
}

func (w *sad) Kernel(lp *core.LP) gpusim.KernelFunc {
	mbsPerRow := w.dim / w.mb
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		group, mbi := b.Idx.X, b.Idx.Y
		ox := (mbi % mbsPerRow) * w.mb
		oy := (mbi / mbsPerRow) * w.mb

		// Phase 1: stage the current macroblock in shared memory.
		curMB := b.SharedI32("curMB", w.mb*w.mb)
		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear < w.mb*w.mb {
				px, py := t.Linear%w.mb, t.Linear/w.mb
				curMB[t.Linear] = t.LoadI32(w.cur, (oy+py)*w.dim+(ox+px))
				t.Op(3)
			}
		})
		// Phase 2: one thread per candidate displacement.
		b.ForAll(func(t *gpusim.Thread) {
			p := group*w.posPer + t.Linear
			dx, dy := w.dispOf(p)
			var s int32
			for py := 0; py < w.mb; py++ {
				for px := 0; px < w.mb; px++ {
					x, y := ox+px+dx, oy+py+dy
					if x < 0 {
						x = 0
					}
					if y < 0 {
						y = 0
					}
					if x >= w.dim {
						x = w.dim - 1
					}
					if y >= w.dim {
						y = w.dim - 1
					}
					d := curMB[py*w.mb+px] - t.LoadI32(w.ref, y*w.dim+x)
					if d < 0 {
						d = -d
					}
					s += d
					t.Op(5)
				}
			}
			t.StoreI32(w.out, mbi*w.positions()+p, s)
			r.Update(t, uint32(s))
		})
		r.Commit()
	}
}

func (w *sad) Recompute() core.RecomputeFunc {
	return func(b *gpusim.Block, r *core.Region) {
		group, mbi := b.Idx.X, b.Idx.Y
		b.ForAll(func(t *gpusim.Thread) {
			p := group*w.posPer + t.Linear
			r.Update(t, uint32(t.LoadI32(w.out, mbi*w.positions()+p)))
		})
	}
}

func (w *sad) Verify() error {
	got := w.out.PeekI32s(len(w.golden))
	for i := range w.golden {
		if got[i] != w.golden[i] {
			return mismatchI32("sad", i, got[i], w.golden[i])
		}
	}
	got8 := w.out8.PeekI32s(len(w.golden8))
	for i := range w.golden8 {
		if got8[i] != w.golden8[i] {
			return mismatchI32("sad.8x8", i, got8[i], w.golden8[i])
		}
	}
	return nil
}

func (w *sad) PersistBytes() int64 { return int64(w.numMBs()) * int64(w.positions()) * 4 }

// Outputs implements Workload.
func (w *sad) Outputs() []memsim.Region { return []memsim.Region{w.out} }
