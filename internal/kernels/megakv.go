package kernels

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/megakv"
	"gpulp/internal/memsim"
)

// megakvWork wraps the MEGA-KV key-value store (§VII-4) as three
// workloads — one per operation type, matching the paper's separate
// search/delete/insert overhead numbers. A batch of operations is
// processed with one thread per op; each thread block is an LP region.
//
// Checksum discipline per op type:
//   - insert: fold key⊕value after the insert; validation re-searches
//     the key and folds what it finds, so a lost index update mismatches.
//   - search: results are written to a persistent output array, which is
//     checksummed and validated like any kernel output.
//   - delete: fold the key after deletion; validation folds the key only
//     if it is absent, so a lost tombstone mismatches.
type megakvWork struct {
	op   string // "search", "insert", "delete"
	nOps int

	dev     *gpusim.Device
	store   *megakv.Store
	keys    memsim.Region // uint64 per op (stored as 2 u32 words each)
	vals    memsim.Region
	results memsim.Region // search: uint64 value found (0 if absent)

	keyList []uint64
	valList []uint64
	golden  []uint64 // search results / expected values
}

const megakvBlockThreads = 128

// deleteMissMarker is folded when validation finds a supposedly deleted
// key still present.
const deleteMissMarker = 0xBAD0BAD0

func newMegaKV(name string, scale int) *megakvWork {
	// 16K records per batch, the workload size of §VII-4.
	return &megakvWork{op: name[len("megakv-"):], nOps: 16384 * scale}
}

func (w *megakvWork) Name() string { return "megakv-" + w.op }

func (w *megakvWork) Info() Info {
	return Info{
		Description: fmt.Sprintf("MEGA-KV in-memory key-value store, batched %s", w.op),
		Suite:       "[12]",
		Bottleneck:  "unknown",
		Input:       fmt.Sprintf("%s %d records", w.op, w.nOps),
	}
}

func (w *megakvWork) Geometry() (gpusim.Dim3, gpusim.Dim3) {
	return gpusim.D1(w.nOps / megakvBlockThreads), gpusim.D1(megakvBlockThreads)
}

func (w *megakvWork) Setup(dev *gpusim.Device) {
	w.dev = dev
	w.store = megakv.NewStore(dev, w.nOps)
	w.keys = dev.Alloc("megakv.keys", w.nOps*8)
	w.vals = dev.Alloc("megakv.vals", w.nOps*8)
	w.results = dev.Alloc("megakv.results", w.nOps*8)

	rng := newPrng(0x33e6)
	w.keyList = make([]uint64, w.nOps)
	w.valList = make([]uint64, w.nOps)
	seen := make(map[uint64]bool, w.nOps)
	for i := range w.keyList {
		k := rng.next()
		for k == 0 || k == megakv.Tombstone || seen[k] {
			k = rng.next()
		}
		seen[k] = true
		w.keyList[i] = k
		w.valList[i] = rng.next()
	}
	w.keys.HostWriteU64s(w.keyList)
	w.vals.HostWriteU64s(w.valList)
	w.results.HostZero()

	switch w.op {
	case "insert":
		// Store starts empty; golden is the inserted values.
		w.golden = w.valList
	case "search":
		// Pre-populate three quarters of the keys; the rest miss.
		w.golden = make([]uint64, w.nOps)
		for i, k := range w.keyList {
			if i%4 != 3 {
				w.store.HostInsert(k, w.valList[i])
				w.golden[i] = w.valList[i]
			}
		}
	case "delete":
		for i, k := range w.keyList {
			w.store.HostInsert(k, w.valList[i])
		}
	case "mixed":
		// A realistic batch mix: 50% searches, 25% inserts of fresh
		// keys, 25% deletes. Search and delete targets are
		// pre-populated; inserts bring new keys.
		w.golden = make([]uint64, w.nOps)
		for i, k := range w.keyList {
			switch i % 4 {
			case 0, 1: // search target
				w.store.HostInsert(k, w.valList[i])
				w.golden[i] = w.valList[i]
			case 3: // delete target
				w.store.HostInsert(k, w.valList[i])
			}
		}
	default:
		panic(fmt.Sprintf("kernels: unknown megakv op %q", w.op))
	}
}

// mixedOpKind returns the operation of batch slot i in the mixed batch.
func mixedOpKind(i int) string {
	switch i % 4 {
	case 0, 1:
		return "search"
	case 2:
		return "insert"
	default:
		return "delete"
	}
}

// loadKey reads op i's key as a device access (two 32-bit halves, charged
// as one 64-bit load).
func (w *megakvWork) loadKey(t *gpusim.Thread, i int) uint64 { return t.LoadU64(w.keys, i) }

func (w *megakvWork) Kernel(lp *core.LP) gpusim.KernelFunc {
	switch w.op {
	case "insert":
		return func(b *gpusim.Block) {
			r := lp.Begin(b)
			b.ForAll(func(t *gpusim.Thread) {
				i := t.GlobalLinear()
				key := w.loadKey(t, i)
				val := t.LoadU64(w.vals, i)
				if !w.store.Insert(t, key, val) {
					panic("megakv: bucket overflow during insert batch")
				}
				r.Update(t, uint32(key)^uint32(val))
			})
			r.Commit()
		}
	case "search":
		return func(b *gpusim.Block) {
			r := lp.Begin(b)
			b.ForAll(func(t *gpusim.Thread) {
				i := t.GlobalLinear()
				key := w.loadKey(t, i)
				val, _ := w.store.Search(t, key)
				t.StoreU64(w.results, i, val)
				r.Update(t, uint32(val)^uint32(val>>32))
			})
			r.Commit()
		}
	case "delete":
		return func(b *gpusim.Block) {
			r := lp.Begin(b)
			b.ForAll(func(t *gpusim.Thread) {
				i := t.GlobalLinear()
				key := w.loadKey(t, i)
				w.store.Delete(t, key)
				r.Update(t, uint32(key))
			})
			r.Commit()
		}
	default: // mixed
		return func(b *gpusim.Block) {
			r := lp.Begin(b)
			b.ForAll(func(t *gpusim.Thread) {
				i := t.GlobalLinear()
				key := w.loadKey(t, i)
				switch mixedOpKind(i) {
				case "search":
					val, _ := w.store.Search(t, key)
					t.StoreU64(w.results, i, val)
					r.Update(t, uint32(val)^uint32(val>>32))
				case "insert":
					val := t.LoadU64(w.vals, i)
					if !w.store.Insert(t, key, val) {
						panic("megakv: bucket overflow during mixed batch")
					}
					r.Update(t, uint32(key)^uint32(val))
				default: // delete
					w.store.Delete(t, key)
					r.Update(t, uint32(key))
				}
			})
			r.Commit()
		}
	}
}

func (w *megakvWork) Recompute() core.RecomputeFunc {
	switch w.op {
	case "insert":
		return func(b *gpusim.Block, r *core.Region) {
			b.ForAll(func(t *gpusim.Thread) {
				i := t.GlobalLinear()
				key := w.loadKey(t, i)
				val, ok := w.store.Search(t, key)
				if !ok {
					r.Update(t, deleteMissMarker) // lost insert: poison the checksum
					return
				}
				r.Update(t, uint32(key)^uint32(val))
			})
		}
	case "search":
		return func(b *gpusim.Block, r *core.Region) {
			b.ForAll(func(t *gpusim.Thread) {
				val := t.LoadU64(w.results, t.GlobalLinear())
				r.Update(t, uint32(val)^uint32(val>>32))
			})
		}
	case "delete":
		return func(b *gpusim.Block, r *core.Region) {
			b.ForAll(func(t *gpusim.Thread) {
				i := t.GlobalLinear()
				key := w.loadKey(t, i)
				if _, ok := w.store.Search(t, key); ok {
					r.Update(t, deleteMissMarker) // tombstone lost
					return
				}
				r.Update(t, uint32(key))
			})
		}
	default: // mixed
		return func(b *gpusim.Block, r *core.Region) {
			b.ForAll(func(t *gpusim.Thread) {
				i := t.GlobalLinear()
				key := w.loadKey(t, i)
				switch mixedOpKind(i) {
				case "search":
					val := t.LoadU64(w.results, i)
					r.Update(t, uint32(val)^uint32(val>>32))
				case "insert":
					val, ok := w.store.Search(t, key)
					if !ok {
						r.Update(t, deleteMissMarker)
						return
					}
					r.Update(t, uint32(key)^uint32(val))
				default: // delete
					if _, ok := w.store.Search(t, key); ok {
						r.Update(t, deleteMissMarker)
						return
					}
					r.Update(t, uint32(key))
				}
			})
		}
	}
}

func (w *megakvWork) Verify() error {
	switch w.op {
	case "insert":
		for i, k := range w.keyList {
			got, ok := w.store.HostGet(k)
			if !ok || got != w.valList[i] {
				return fmt.Errorf("megakv-insert: key %#x -> %#x (found=%v), want %#x", k, got, ok, w.valList[i])
			}
		}
	case "search":
		for i := range w.keyList {
			if got := w.results.PeekU64(i); got != w.golden[i] {
				return fmt.Errorf("megakv-search: result[%d] = %#x, want %#x", i, got, w.golden[i])
			}
		}
	case "delete":
		for _, k := range w.keyList {
			if _, ok := w.store.HostGet(k); ok {
				return fmt.Errorf("megakv-delete: key %#x still present", k)
			}
		}
	default: // mixed
		for i, k := range w.keyList {
			switch mixedOpKind(i) {
			case "search":
				if got := w.results.PeekU64(i); got != w.golden[i] {
					return fmt.Errorf("megakv-mixed: search result[%d] = %#x, want %#x", i, got, w.golden[i])
				}
				if got, ok := w.store.HostGet(k); !ok || got != w.valList[i] {
					return fmt.Errorf("megakv-mixed: searched key %#x disturbed", k)
				}
			case "insert":
				if got, ok := w.store.HostGet(k); !ok || got != w.valList[i] {
					return fmt.Errorf("megakv-mixed: inserted key %#x -> %#x (found=%v), want %#x", k, got, ok, w.valList[i])
				}
			default: // delete
				if _, ok := w.store.HostGet(k); ok {
					return fmt.Errorf("megakv-mixed: deleted key %#x still present", k)
				}
			}
		}
	}
	return nil
}

func (w *megakvWork) PersistBytes() int64 {
	if w.op == "search" {
		return int64(w.nOps) * 8
	}
	// The persistent structure is the index itself (bucket count is nOps
	// rounded to a power of two, as NewStore sizes it).
	buckets := 1
	for buckets < w.nOps {
		buckets <<= 1
	}
	return int64(buckets) * megakv.SlotsPerBucket * 16
}

// Outputs implements Workload: the persistent structure is the results
// array for searches and the index itself for mutating batches (both,
// for the mixed batch).
func (w *megakvWork) Outputs() []memsim.Region {
	switch w.op {
	case "search":
		return []memsim.Region{w.results}
	case "mixed":
		return []memsim.Region{w.results, w.store.Region()}
	default:
		return []memsim.Region{w.store.Region()}
	}
}
