package kernels

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// tpacf is the two-point angular correlation function: histograms of
// angular separations (via dot products of unit vectors) over pairs of
// sky positions. As in the real benchmark, three correlation classes are
// computed — data-data (DD), data-random (DR) and random-random (RR) —
// against an observed catalog and a synthetic random catalog. Each block
// owns one (class, chunk-of-points) pair, correlates it against the
// whole opposing catalog into a private shared-memory histogram, and
// writes its per-block bins to global memory (idempotent LP regions, as
// with HISTO). Dominated by arithmetic per pair — instruction-throughput
// bound (Table I).
type tpacf struct {
	npoints  int
	perBlock int
	nbins    int

	dev        *gpusim.Device
	dx, dy, dz memsim.Region // float32 data catalog unit vectors
	rx, ry, rz memsim.Region // float32 random catalog unit vectors
	bins       memsim.Region // int32, blocks x nbins

	golden []int32
}

const tpacfBlockThreads = 64

// tpacfClasses is DD, DR, RR.
const tpacfClasses = 3

func newTPACF(scale int) *tpacf {
	// 3 classes x 64 chunks = 192 blocks at scale 1; scaling grows the
	// catalogs and the block count together.
	return &tpacf{npoints: 512 * scale, perBlock: 8, nbins: 32}
}

func (w *tpacf) chunks() int    { return w.npoints / w.perBlock }
func (w *tpacf) numBlocks() int { return tpacfClasses * w.chunks() }

func (w *tpacf) Name() string { return "tpacf" }

func (w *tpacf) Info() Info {
	return Info{
		Description: "two-point angular correlation (DD/DR/RR histograms)",
		Suite:       "Parboil",
		Bottleneck:  "inst throughput",
		Input:       fmt.Sprintf("%d data + %d random positions, %d bins", w.npoints, w.npoints, w.nbins),
	}
}

func (w *tpacf) Geometry() (gpusim.Dim3, gpusim.Dim3) {
	return gpusim.D2(w.chunks(), tpacfClasses), gpusim.D1(tpacfBlockThreads)
}

// binOf maps a dot product in [-1, 1] to a bin.
func (w *tpacf) binOf(dot float32) int {
	bin := int((dot + 1) * 0.5 * float32(w.nbins))
	if bin >= w.nbins {
		bin = w.nbins - 1
	}
	if bin < 0 {
		bin = 0
	}
	return bin
}

// catalog generates npoints unit-ish vectors from a seed.
func (w *tpacf) catalog(seed uint64) (xs, ys, zs []float32) {
	rng := newPrng(seed)
	xs = make([]float32, w.npoints)
	ys = make([]float32, w.npoints)
	zs = make([]float32, w.npoints)
	for i := 0; i < w.npoints; i++ {
		x, y, z := rng.f32()*2-1, rng.f32()*2-1, rng.f32()*2-1
		norm := x*x + y*y + z*z
		if norm == 0 {
			x, norm = 1, 1
		}
		inv := 1 / sqrtf(norm)
		xs[i], ys[i], zs[i] = x*inv, y*inv, z*inv
	}
	return xs, ys, zs
}

// tpacfClassName names a correlation class: 0=DD, 1=DR, 2=RR.
func tpacfClassName(class int) string {
	return [...]string{"DD", "DR", "RR"}[class]
}

func (w *tpacf) Setup(dev *gpusim.Device) {
	w.dev = dev
	n := w.npoints
	w.dx = dev.Alloc("tpacf.dx", n*4)
	w.dy = dev.Alloc("tpacf.dy", n*4)
	w.dz = dev.Alloc("tpacf.dz", n*4)
	w.rx = dev.Alloc("tpacf.rx", n*4)
	w.ry = dev.Alloc("tpacf.ry", n*4)
	w.rz = dev.Alloc("tpacf.rz", n*4)
	w.bins = dev.Alloc("tpacf.bins", w.numBlocks()*w.nbins*4)

	dxs, dys, dzs := w.catalog(0x79ac)
	rxs, rys, rzs := w.catalog(0x4a7d)
	w.dx.HostWriteF32s(dxs)
	w.dy.HostWriteF32s(dys)
	w.dz.HostWriteF32s(dzs)
	w.rx.HostWriteF32s(rxs)
	w.ry.HostWriteF32s(rys)
	w.rz.HostWriteF32s(rzs)
	w.bins.HostZero()

	// Host golden, in the kernel's class/chunk/pair order.
	cats := [2][3][]float32{{dxs, dys, dzs}, {rxs, rys, rzs}}
	outerOf := [tpacfClasses]int{0, 0, 1} // DD, DR, RR
	innerOf := [tpacfClasses]int{0, 1, 1}
	w.golden = make([]int32, w.numBlocks()*w.nbins)
	for class := 0; class < tpacfClasses; class++ {
		o, in := cats[outerOf[class]], cats[innerOf[class]]
		for chunk := 0; chunk < w.chunks(); chunk++ {
			blk := class*w.chunks() + chunk
			for pi := chunk * w.perBlock; pi < (chunk+1)*w.perBlock; pi++ {
				for pj := 0; pj < n; pj++ {
					if class != 1 && pj == pi {
						continue // self-pairs only exist within a catalog
					}
					dot := o[0][pi]*in[0][pj] + o[1][pi]*in[1][pj] + o[2][pi]*in[2][pj]
					w.golden[blk*w.nbins+w.binOf(dot)]++
				}
			}
		}
	}
}

func (w *tpacf) Kernel(lp *core.LP) gpusim.KernelFunc {
	n := w.npoints
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		class, chunk := b.Idx.Y, b.Idx.X
		ox, oy, oz := w.dx, w.dy, w.dz
		if class == 2 {
			ox, oy, oz = w.rx, w.ry, w.rz
		}
		ix, iy, iz := w.rx, w.ry, w.rz
		if class == 0 {
			ix, iy, iz = w.dx, w.dy, w.dz
		}
		bins := b.SharedI32("bins", w.nbins)
		// Phase 1: correlate this block's points against the opposing
		// catalog. Threads stride over the catalog; shared-memory
		// increments are exact under ForAll's serialization (charged as
		// ops).
		b.ForAll(func(t *gpusim.Thread) {
			for pi := chunk * w.perBlock; pi < (chunk+1)*w.perBlock; pi++ {
				xi := t.LoadF32(ox, pi)
				yi := t.LoadF32(oy, pi)
				zi := t.LoadF32(oz, pi)
				for pj := t.Linear; pj < n; pj += tpacfBlockThreads {
					if class != 1 && pj == pi {
						continue
					}
					xj := t.LoadF32(ix, pj)
					yj := t.LoadF32(iy, pj)
					zj := t.LoadF32(iz, pj)
					dot := xi*xj + yi*yj + zi*zj
					bins[w.binOf(dot)]++
					t.Op(12) // dot product, bin mapping, shared increment
				}
			}
		})
		// Phase 2: emit the block's private histogram.
		blk := class*w.chunks() + chunk
		b.ForAll(func(t *gpusim.Thread) {
			for bin := t.Linear; bin < w.nbins; bin += tpacfBlockThreads {
				v := bins[bin]
				t.StoreI32(w.bins, blk*w.nbins+bin, v)
				r.Update(t, uint32(v))
			}
		})
		r.Commit()
	}
}

func (w *tpacf) Recompute() core.RecomputeFunc {
	return func(b *gpusim.Block, r *core.Region) {
		blk := b.Idx.Y*w.chunks() + b.Idx.X
		b.ForAll(func(t *gpusim.Thread) {
			for bin := t.Linear; bin < w.nbins; bin += tpacfBlockThreads {
				r.Update(t, uint32(t.LoadI32(w.bins, blk*w.nbins+bin)))
			}
		})
	}
}

func (w *tpacf) Verify() error {
	got := w.bins.PeekI32s(len(w.golden))
	for i := range w.golden {
		if got[i] != w.golden[i] {
			class := i / w.nbins / w.chunks()
			return fmt.Errorf("tpacf %s: %w", tpacfClassName(class),
				mismatchI32("bins", i, got[i], w.golden[i]))
		}
	}
	return nil
}

func (w *tpacf) PersistBytes() int64 { return int64(w.numBlocks()) * int64(w.nbins) * 4 }

// Outputs implements Workload.
func (w *tpacf) Outputs() []memsim.Region { return []memsim.Region{w.bins} }

// sqrtf is float32 square root via the float64 intrinsic, matching what
// kernel and golden both use so results agree exactly.
func sqrtf(v float32) float32 {
	return float32(sqrt64(float64(v)))
}
