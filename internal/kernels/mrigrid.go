package kernels

import (
	"fmt"
	"math"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// sqrt64 keeps the math import local to one place shared by kernels.
func sqrt64(v float64) float64 { return math.Sqrt(v) }

// mriGridding models MRI Cartesian gridding: non-uniform k-space samples
// are convolved onto a regular grid with a separable window function. To
// keep LP regions idempotent, the computation is gather-formulated: the
// samples are pre-binned by grid cell, and each thread block owns an
// exclusive 2x2 tile of output cells, gathering contributions from the
// 3x3 cell neighborhood. The result is a very large number of very small
// blocks — the configuration whose hash-table contention dominates Fig. 5.
type mriGridding struct {
	cells   int // grid is cells x cells
	tile    int // tile edge in cells
	samples int

	dev       *gpusim.Device
	sx, sy    memsim.Region // float32 sample coordinates (grid units)
	sv        memsim.Region // float32 sample values
	cellStart memsim.Region // int32, cells*cells+1 (CSR over sorted samples)
	sampleIdx memsim.Region // int32, samples (sorted by cell)
	grid      memsim.Region // float32 output, cells*cells

	golden []float32
}

const mriGridBlockThreads = 32

func newMRIGridding(scale int) *mriGridding {
	// 128x128 cells in 2x2 tiles = 4096 blocks at scale 1.
	return &mriGridding{cells: 128 * scale, tile: 2, samples: 8 * 128 * 128 * scale * scale}
}

func (w *mriGridding) numBlocks() int { return (w.cells / w.tile) * (w.cells / w.tile) }

func (w *mriGridding) Name() string { return "mri-gridding" }

func (w *mriGridding) Info() Info {
	return Info{
		Description: "MRI Cartesian gridding (gather-formulated convolution)",
		Suite:       "Parboil",
		Bottleneck:  "inst throughput",
		Input:       fmt.Sprintf("%d samples onto %dx%d grid, %d blocks", w.samples, w.cells, w.cells, w.numBlocks()),
	}
}

func (w *mriGridding) Geometry() (gpusim.Dim3, gpusim.Dim3) {
	n := w.cells / w.tile
	return gpusim.D2(n, n), gpusim.D1(mriGridBlockThreads)
}

// weight is the convolution window: a truncated squared cosine-like
// polynomial of the squared distance, zero beyond radius 1.
func gridWeight(d2 float32) float32 {
	if d2 >= 1 {
		return 0
	}
	t := 1 - d2
	return t * t
}

func (w *mriGridding) Setup(dev *gpusim.Device) {
	w.dev = dev
	nc := w.cells * w.cells
	w.sx = dev.Alloc("mrig.sx", w.samples*4)
	w.sy = dev.Alloc("mrig.sy", w.samples*4)
	w.sv = dev.Alloc("mrig.sv", w.samples*4)
	w.cellStart = dev.Alloc("mrig.cellstart", (nc+1)*4)
	w.sampleIdx = dev.Alloc("mrig.sampleidx", w.samples*4)
	w.grid = dev.Alloc("mrig.grid", nc*4)

	rng := newPrng(0x319d)
	xs := make([]float32, w.samples)
	ys := make([]float32, w.samples)
	vs := make([]float32, w.samples)
	cellOf := make([]int, w.samples)
	counts := make([]int32, nc+1)
	for i := 0; i < w.samples; i++ {
		xs[i] = rng.f32() * float32(w.cells)
		ys[i] = rng.f32() * float32(w.cells)
		vs[i] = rng.f32()
		cx, cy := int(xs[i]), int(ys[i])
		if cx >= w.cells {
			cx = w.cells - 1
		}
		if cy >= w.cells {
			cy = w.cells - 1
		}
		cellOf[i] = cy*w.cells + cx
		counts[cellOf[i]+1]++
	}
	for c := 0; c < nc; c++ {
		counts[c+1] += counts[c]
	}
	// Counting sort of sample indices by cell.
	idx := make([]int32, w.samples)
	cursor := make([]int32, nc)
	copy(cursor, counts[:nc])
	for i := 0; i < w.samples; i++ {
		idx[cursor[cellOf[i]]] = int32(i)
		cursor[cellOf[i]]++
	}
	w.sx.HostWriteF32s(xs)
	w.sy.HostWriteF32s(ys)
	w.sv.HostWriteF32s(vs)
	w.cellStart.HostWriteI32s(counts)
	w.sampleIdx.HostWriteI32s(idx)
	w.grid.HostZero()

	// Host golden: gather in the same neighbor/sample order as the kernel.
	w.golden = make([]float32, nc)
	for cy := 0; cy < w.cells; cy++ {
		for cx := 0; cx < w.cells; cx++ {
			tx, ty := float32(cx)+0.5, float32(cy)+0.5
			var acc float32
			for ny := cy - 1; ny <= cy+1; ny++ {
				for nx := cx - 1; nx <= cx+1; nx++ {
					if nx < 0 || ny < 0 || nx >= w.cells || ny >= w.cells {
						continue
					}
					c := ny*w.cells + nx
					for k := counts[c]; k < counts[c+1]; k++ {
						s := idx[k]
						dx := xs[s] - tx
						dy := ys[s] - ty
						acc += gridWeight(dx*dx+dy*dy) * vs[s]
					}
				}
			}
			w.golden[cy*w.cells+cx] = acc
		}
	}
}

func (w *mriGridding) Kernel(lp *core.LP) gpusim.KernelFunc {
	cellsPerTile := w.tile * w.tile
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear >= cellsPerTile {
				return // only the first tile^2 threads own a cell
			}
			cx := b.Idx.X*w.tile + t.Linear%w.tile
			cy := b.Idx.Y*w.tile + t.Linear/w.tile
			tx, ty := float32(cx)+0.5, float32(cy)+0.5
			var acc float32
			for ny := cy - 1; ny <= cy+1; ny++ {
				for nx := cx - 1; nx <= cx+1; nx++ {
					if nx < 0 || ny < 0 || nx >= w.cells || ny >= w.cells {
						continue
					}
					c := ny*w.cells + nx
					lo := t.LoadI32(w.cellStart, c)
					hi := t.LoadI32(w.cellStart, c+1)
					for k := lo; k < hi; k++ {
						s := int(t.LoadI32(w.sampleIdx, int(k)))
						dx := t.LoadF32(w.sx, s) - tx
						dy := t.LoadF32(w.sy, s) - ty
						acc += gridWeight(dx*dx+dy*dy) * t.LoadF32(w.sv, s)
						t.Op(9) // window evaluation and accumulate
					}
				}
			}
			t.StoreF32(w.grid, cy*w.cells+cx, acc)
			r.UpdateF32(t, acc)
		})
		r.Commit()
	}
}

func (w *mriGridding) Recompute() core.RecomputeFunc {
	cellsPerTile := w.tile * w.tile
	return func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			if t.Linear >= cellsPerTile {
				return
			}
			cx := b.Idx.X*w.tile + t.Linear%w.tile
			cy := b.Idx.Y*w.tile + t.Linear/w.tile
			r.UpdateF32(t, t.LoadF32(w.grid, cy*w.cells+cx))
		})
	}
}

func (w *mriGridding) Verify() error {
	got := w.grid.PeekF32s(len(w.golden))
	for i := range w.golden {
		if got[i] != w.golden[i] {
			return mismatchF32("mri-gridding", i, got[i], w.golden[i])
		}
	}
	return nil
}

func (w *mriGridding) PersistBytes() int64 { return int64(w.cells) * int64(w.cells) * 4 }

// Outputs implements Workload.
func (w *mriGridding) Outputs() []memsim.Region { return []memsim.Region{w.grid} }
