package kernels

import (
	"fmt"
	"math"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// mriq computes the Q matrix of non-Cartesian MRI reconstruction: for
// every voxel, accumulate cos/sin phase contributions over all k-space
// samples. The trigonometric inner loop makes it the most purely
// instruction-throughput-bound kernel in the suite.
type mriq struct {
	voxels   int
	ksamples int

	dev        *gpusim.Device
	vx, vy, vz memsim.Region // float32 voxel coordinates
	kx, ky, kz memsim.Region // float32 k-space trajectory
	phiR, phiI memsim.Region // float32 sample weights
	qr, qi     memsim.Region // float32 outputs

	goldenR, goldenI []float32
}

const mriqBlockThreads = 64

func newMRIQ(scale int) *mriq {
	// 256 blocks x 64 threads at scale 1.
	return &mriq{voxels: 16384 * scale, ksamples: 256}
}

func (w *mriq) Name() string { return "mri-q" }

func (w *mriq) Info() Info {
	return Info{
		Description: "MRI Q-matrix computation (per-voxel trigonometric sums)",
		Suite:       "Parboil",
		Bottleneck:  "inst throughput",
		Input:       fmt.Sprintf("%d voxels, %d k-space samples", w.voxels, w.ksamples),
	}
}

func (w *mriq) Geometry() (gpusim.Dim3, gpusim.Dim3) {
	return gpusim.D1(w.voxels / mriqBlockThreads), gpusim.D1(mriqBlockThreads)
}

func (w *mriq) Setup(dev *gpusim.Device) {
	w.dev = dev
	w.vx = dev.Alloc("mriq.vx", w.voxels*4)
	w.vy = dev.Alloc("mriq.vy", w.voxels*4)
	w.vz = dev.Alloc("mriq.vz", w.voxels*4)
	w.kx = dev.Alloc("mriq.kx", w.ksamples*4)
	w.ky = dev.Alloc("mriq.ky", w.ksamples*4)
	w.kz = dev.Alloc("mriq.kz", w.ksamples*4)
	w.phiR = dev.Alloc("mriq.phir", w.ksamples*4)
	w.phiI = dev.Alloc("mriq.phii", w.ksamples*4)
	w.qr = dev.Alloc("mriq.qr", w.voxels*4)
	w.qi = dev.Alloc("mriq.qi", w.voxels*4)

	rng := newPrng(0x3129)
	vxs := make([]float32, w.voxels)
	vys := make([]float32, w.voxels)
	vzs := make([]float32, w.voxels)
	for i := range vxs {
		vxs[i] = rng.f32()
		vys[i] = rng.f32()
		vzs[i] = rng.f32()
	}
	kxs := make([]float32, w.ksamples)
	kys := make([]float32, w.ksamples)
	kzs := make([]float32, w.ksamples)
	prs := make([]float32, w.ksamples)
	pis := make([]float32, w.ksamples)
	for i := range kxs {
		kxs[i] = rng.f32() * 8
		kys[i] = rng.f32() * 8
		kzs[i] = rng.f32() * 8
		prs[i] = rng.f32()
		pis[i] = rng.f32()
	}
	w.vx.HostWriteF32s(vxs)
	w.vy.HostWriteF32s(vys)
	w.vz.HostWriteF32s(vzs)
	w.kx.HostWriteF32s(kxs)
	w.ky.HostWriteF32s(kys)
	w.kz.HostWriteF32s(kzs)
	w.phiR.HostWriteF32s(prs)
	w.phiI.HostWriteF32s(pis)
	w.qr.HostZero()
	w.qi.HostZero()

	w.goldenR = make([]float32, w.voxels)
	w.goldenI = make([]float32, w.voxels)
	for v := 0; v < w.voxels; v++ {
		var qr, qi float32
		for k := 0; k < w.ksamples; k++ {
			phase := 2 * float32(math.Pi) * (kxs[k]*vxs[v] + kys[k]*vys[v] + kzs[k]*vzs[v])
			c := float32(math.Cos(float64(phase)))
			s := float32(math.Sin(float64(phase)))
			qr += prs[k]*c - pis[k]*s
			qi += prs[k]*s + pis[k]*c
		}
		w.goldenR[v] = qr
		w.goldenI[v] = qi
	}
}

func (w *mriq) Kernel(lp *core.LP) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			v := t.GlobalLinear()
			x := t.LoadF32(w.vx, v)
			y := t.LoadF32(w.vy, v)
			z := t.LoadF32(w.vz, v)
			var qr, qi float32
			for k := 0; k < w.ksamples; k++ {
				kx := t.LoadF32(w.kx, k)
				ky := t.LoadF32(w.ky, k)
				kz := t.LoadF32(w.kz, k)
				pr := t.LoadF32(w.phiR, k)
				pi := t.LoadF32(w.phiI, k)
				phase := 2 * float32(math.Pi) * (kx*x + ky*y + kz*z)
				c := float32(math.Cos(float64(phase)))
				s := float32(math.Sin(float64(phase)))
				qr += pr*c - pi*s
				qi += pr*s + pi*c
				t.Op(20) // dot product, sincos, complex accumulate
			}
			t.StoreF32(w.qr, v, qr)
			r.UpdateF32(t, qr)
			t.StoreF32(w.qi, v, qi)
			r.UpdateF32(t, qi)
		})
		r.Commit()
	}
}

func (w *mriq) Recompute() core.RecomputeFunc {
	return func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			v := t.GlobalLinear()
			r.UpdateF32(t, t.LoadF32(w.qr, v))
			r.UpdateF32(t, t.LoadF32(w.qi, v))
		})
	}
}

func (w *mriq) Verify() error {
	gr := w.qr.PeekF32s(w.voxels)
	gi := w.qi.PeekF32s(w.voxels)
	for i := range w.goldenR {
		if gr[i] != w.goldenR[i] {
			return mismatchF32("mri-q.real", i, gr[i], w.goldenR[i])
		}
		if gi[i] != w.goldenI[i] {
			return mismatchF32("mri-q.imag", i, gi[i], w.goldenI[i])
		}
	}
	return nil
}

func (w *mriq) PersistBytes() int64 { return int64(w.voxels) * 8 }

// Outputs implements Workload.
func (w *mriq) Outputs() []memsim.Region { return []memsim.Region{w.qr, w.qi} }
