package kernels

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// histo is the Parboil saturating histogram: a 256-bin histogram of a
// large image whose bins saturate at 255. To keep thread blocks
// idempotent (LP's common case, §IV-A), each block accumulates a private
// sub-histogram in shared memory and writes it to its own slice of global
// memory — the LP-protected output. A small finalize kernel merges and
// saturates the per-block histograms; it runs identically in baseline and
// LP measurements.
type histo struct {
	blocks    int
	pxPerThrd int

	dev     *gpusim.Device
	img     memsim.Region // int32 pixel values 0..255
	partial memsim.Region // int32, blocks x 256
	final   memsim.Region // int32, 256, saturated

	golden      []int32 // per-block partials
	goldenFinal []int32
}

const (
	histoBins         = 256
	histoBlockThreads = 256
)

func newHISTO(scale int) *histo {
	// 42 blocks (the paper's count) x 256 threads x 24 pixels each.
	return &histo{blocks: 42, pxPerThrd: 24 * scale}
}

func (w *histo) pixels() int { return w.blocks * histoBlockThreads * w.pxPerThrd }

func (w *histo) Name() string { return "histo" }

func (w *histo) Info() Info {
	return Info{
		Description: "saturating histogram with privatized per-block bins",
		Suite:       "Parboil",
		Bottleneck:  "bandwidth",
		Input:       fmt.Sprintf("%d pixels, %d bins, %d blocks", w.pixels(), histoBins, w.blocks),
	}
}

func (w *histo) Geometry() (gpusim.Dim3, gpusim.Dim3) {
	return gpusim.D1(w.blocks), gpusim.D1(histoBlockThreads)
}

func (w *histo) Setup(dev *gpusim.Device) {
	w.dev = dev
	n := w.pixels()
	w.img = dev.Alloc("histo.img", n*4)
	w.partial = dev.Alloc("histo.partial", w.blocks*histoBins*4)
	w.final = dev.Alloc("histo.final", histoBins*4)

	rng := newPrng(0x415)
	pv := make([]int32, n)
	for i := range pv {
		// Skewed distribution so some bins saturate, as in the Parboil
		// input (a silicon-wafer image with hot spots).
		v := rng.intn(256)
		if rng.intn(4) != 0 {
			v = v % 32 // three quarters of the mass in the low bins
		}
		pv[i] = int32(v)
	}
	w.img.HostWriteI32s(pv)
	w.partial.HostZero()
	w.final.HostZero()

	w.golden = make([]int32, w.blocks*histoBins)
	for blk := 0; blk < w.blocks; blk++ {
		lo := blk * histoBlockThreads * w.pxPerThrd
		hi := lo + histoBlockThreads*w.pxPerThrd
		for i := lo; i < hi; i++ {
			w.golden[blk*histoBins+int(pv[i])]++
		}
	}
	w.goldenFinal = make([]int32, histoBins)
	for bin := 0; bin < histoBins; bin++ {
		var s int32
		for blk := 0; blk < w.blocks; blk++ {
			s += w.golden[blk*histoBins+bin]
		}
		if s > 255 {
			s = 255
		}
		w.goldenFinal[bin] = s
	}
}

func (w *histo) Kernel(lp *core.LP) gpusim.KernelFunc {
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		bins := b.SharedI32("bins", histoBins)
		// Phase 1: accumulate into the private shared histogram. Within
		// a block, ForAll serializes threads, so plain shared-memory
		// increments are exact (a real kernel would use shared-memory
		// atomics; charge an op for them).
		b.ForAll(func(t *gpusim.Thread) {
			base := (b.LinearIdx*histoBlockThreads + t.Linear) * w.pxPerThrd
			for k := 0; k < w.pxPerThrd; k++ {
				v := t.LoadI32(w.img, base+k)
				bins[v]++
				t.Op(3)
			}
		})
		// Phase 2: write the block's sub-histogram to its global slice.
		b.ForAll(func(t *gpusim.Thread) {
			v := bins[t.Linear]
			t.StoreI32(w.partial, b.LinearIdx*histoBins+t.Linear, v)
			r.Update(t, uint32(v))
		})
		r.Commit()
	}
}

// FinalizeKernel merges the per-block histograms and saturates at 255.
func (w *histo) FinalizeKernel() (string, gpusim.Dim3, gpusim.Dim3, gpusim.KernelFunc) {
	k := func(b *gpusim.Block) {
		b.ForAll(func(t *gpusim.Thread) {
			var s int32
			for blk := 0; blk < w.blocks; blk++ {
				s += t.LoadI32(w.partial, blk*histoBins+t.Linear)
				t.Op(1)
			}
			if s > 255 {
				s = 255
			}
			t.Op(1)
			t.StoreI32(w.final, t.Linear, s)
		})
	}
	return "histo-merge", gpusim.D1(1), gpusim.D1(histoBins), k
}

func (w *histo) Recompute() core.RecomputeFunc {
	return func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			r.Update(t, uint32(t.LoadI32(w.partial, b.LinearIdx*histoBins+t.Linear)))
		})
	}
}

func (w *histo) Verify() error {
	got := w.partial.PeekI32s(len(w.golden))
	for i := range w.golden {
		if got[i] != w.golden[i] {
			return mismatchI32("histo.partial", i, got[i], w.golden[i])
		}
	}
	gotF := w.final.PeekI32s(histoBins)
	for i := range w.goldenFinal {
		if gotF[i] != w.goldenFinal[i] {
			return mismatchI32("histo.final", i, gotF[i], w.goldenFinal[i])
		}
	}
	return nil
}

func (w *histo) PersistBytes() int64 { return int64(w.blocks) * histoBins * 4 }

// Outputs implements Workload.
func (w *histo) Outputs() []memsim.Region { return []memsim.Region{w.partial} }
