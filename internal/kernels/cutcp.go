package kernels

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// cutcp computes the distance-cutoff Coulombic potential on a 3D lattice:
// for every lattice point, sum q/r over the atoms within a cutoff radius,
// using a cell list to prune the search. One block owns a brick of
// lattice points; the per-point inner loop is arithmetic-heavy, so the
// kernel is instruction-throughput bound with few, large blocks.
type cutcp struct {
	lx, ly, lz int // lattice dimensions
	natoms     int
	cutoff     float32

	dev        *gpusim.Device
	ax, ay, az memsim.Region // float32 atom coordinates
	aq         memsim.Region // float32 atom charges
	binStart   memsim.Region // int32 CSR over atoms binned by cell
	binIdx     memsim.Region // int32
	pot        memsim.Region // float32 output, lx*ly*lz

	bx, by, bz int // atom bin grid dimensions
	binEdge    float32
	golden     []float32
}

func newCUTCP(scale int) *cutcp {
	// 32x32x16 lattice in 8x8x4 bricks = 64 blocks of 256 threads.
	return &cutcp{lx: 32 * scale, ly: 32, lz: 16, natoms: 512 * scale, cutoff: 4}
}

func (w *cutcp) points() int { return w.lx * w.ly * w.lz }

func (w *cutcp) Name() string { return "cutcp" }

func (w *cutcp) Info() Info {
	return Info{
		Description: "distance-cutoff Coulombic potential on a 3D lattice",
		Suite:       "Parboil",
		Bottleneck:  "inst throughput",
		Input:       fmt.Sprintf("%dx%dx%d lattice, %d atoms, cutoff %.1f", w.lx, w.ly, w.lz, w.natoms, w.cutoff),
	}
}

func (w *cutcp) Geometry() (gpusim.Dim3, gpusim.Dim3) {
	return gpusim.D3(w.lx/8, w.ly/8, w.lz/4), gpusim.D3(8, 8, 4)
}

func (w *cutcp) binOf(x, y, z float32) int {
	cx, cy, cz := int(x/w.binEdge), int(y/w.binEdge), int(z/w.binEdge)
	if cx >= w.bx {
		cx = w.bx - 1
	}
	if cy >= w.by {
		cy = w.by - 1
	}
	if cz >= w.bz {
		cz = w.bz - 1
	}
	return (cz*w.by+cy)*w.bx + cx
}

func (w *cutcp) Setup(dev *gpusim.Device) {
	w.dev = dev
	w.binEdge = w.cutoff
	w.bx = int(float32(w.lx)/w.binEdge) + 1
	w.by = int(float32(w.ly)/w.binEdge) + 1
	w.bz = int(float32(w.lz)/w.binEdge) + 1
	nbins := w.bx * w.by * w.bz

	w.ax = dev.Alloc("cutcp.ax", w.natoms*4)
	w.ay = dev.Alloc("cutcp.ay", w.natoms*4)
	w.az = dev.Alloc("cutcp.az", w.natoms*4)
	w.aq = dev.Alloc("cutcp.aq", w.natoms*4)
	w.binStart = dev.Alloc("cutcp.binstart", (nbins+1)*4)
	w.binIdx = dev.Alloc("cutcp.binidx", w.natoms*4)
	w.pot = dev.Alloc("cutcp.pot", w.points()*4)

	rng := newPrng(0xc07c)
	xs := make([]float32, w.natoms)
	ys := make([]float32, w.natoms)
	zs := make([]float32, w.natoms)
	qs := make([]float32, w.natoms)
	binOf := make([]int, w.natoms)
	counts := make([]int32, nbins+1)
	for i := 0; i < w.natoms; i++ {
		xs[i] = rng.f32() * float32(w.lx)
		ys[i] = rng.f32() * float32(w.ly)
		zs[i] = rng.f32() * float32(w.lz)
		qs[i] = rng.f32()*2 - 1
		binOf[i] = w.binOf(xs[i], ys[i], zs[i])
		counts[binOf[i]+1]++
	}
	for c := 0; c < nbins; c++ {
		counts[c+1] += counts[c]
	}
	idx := make([]int32, w.natoms)
	cursor := make([]int32, nbins)
	copy(cursor, counts[:nbins])
	for i := 0; i < w.natoms; i++ {
		idx[cursor[binOf[i]]] = int32(i)
		cursor[binOf[i]]++
	}
	w.ax.HostWriteF32s(xs)
	w.ay.HostWriteF32s(ys)
	w.az.HostWriteF32s(zs)
	w.aq.HostWriteF32s(qs)
	w.binStart.HostWriteI32s(counts)
	w.binIdx.HostWriteI32s(idx)
	w.pot.HostZero()

	w.golden = make([]float32, w.points())
	for pz := 0; pz < w.lz; pz++ {
		for py := 0; py < w.ly; py++ {
			for px := 0; px < w.lx; px++ {
				w.golden[(pz*w.ly+py)*w.lx+px] = w.potentialAt(
					float32(px), float32(py), float32(pz),
					xs, ys, zs, qs, counts, idx)
			}
		}
	}
}

// potentialAt is the shared gather routine: golden and kernel walk the
// same bins in the same order so float32 sums agree exactly.
func (w *cutcp) potentialAt(x, y, z float32, xs, ys, zs, qs []float32, counts, idx []int32) float32 {
	c2 := w.cutoff * w.cutoff
	cx, cy, cz := int(x/w.binEdge), int(y/w.binEdge), int(z/w.binEdge)
	var pot float32
	for nz := cz - 1; nz <= cz+1; nz++ {
		for ny := cy - 1; ny <= cy+1; ny++ {
			for nx := cx - 1; nx <= cx+1; nx++ {
				if nx < 0 || ny < 0 || nz < 0 || nx >= w.bx || ny >= w.by || nz >= w.bz {
					continue
				}
				c := (nz*w.by+ny)*w.bx + nx
				for k := counts[c]; k < counts[c+1]; k++ {
					a := idx[k]
					dx := xs[a] - x
					dy := ys[a] - y
					dz := zs[a] - z
					d2 := dx*dx + dy*dy + dz*dz
					if d2 < c2 && d2 > 0 {
						pot += qs[a] / sqrtf(d2)
					}
				}
			}
		}
	}
	return pot
}

func (w *cutcp) Kernel(lp *core.LP) gpusim.KernelFunc {
	c2 := w.cutoff * w.cutoff
	return func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			px := b.Idx.X*8 + t.Idx.X
			py := b.Idx.Y*8 + t.Idx.Y
			pz := b.Idx.Z*4 + t.Idx.Z
			x, y, z := float32(px), float32(py), float32(pz)
			cx, cy, cz := int(x/w.binEdge), int(y/w.binEdge), int(z/w.binEdge)
			var pot float32
			for nz := cz - 1; nz <= cz+1; nz++ {
				for ny := cy - 1; ny <= cy+1; ny++ {
					for nx := cx - 1; nx <= cx+1; nx++ {
						if nx < 0 || ny < 0 || nz < 0 || nx >= w.bx || ny >= w.by || nz >= w.bz {
							continue
						}
						c := (nz*w.by+ny)*w.bx + nx
						lo := t.LoadI32(w.binStart, c)
						hi := t.LoadI32(w.binStart, c+1)
						for k := lo; k < hi; k++ {
							a := int(t.LoadI32(w.binIdx, int(k)))
							dx := t.LoadF32(w.ax, a) - x
							dy := t.LoadF32(w.ay, a) - y
							dz := t.LoadF32(w.az, a) - z
							d2 := dx*dx + dy*dy + dz*dz
							t.Op(8)
							if d2 < c2 && d2 > 0 {
								pot += t.LoadF32(w.aq, a) / sqrtf(d2)
								t.Op(6) // rsqrt + fma
							}
						}
					}
				}
			}
			t.StoreF32(w.pot, (pz*w.ly+py)*w.lx+px, pot)
			r.UpdateF32(t, pot)
		})
		r.Commit()
	}
}

func (w *cutcp) Recompute() core.RecomputeFunc {
	return func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			px := b.Idx.X*8 + t.Idx.X
			py := b.Idx.Y*8 + t.Idx.Y
			pz := b.Idx.Z*4 + t.Idx.Z
			r.UpdateF32(t, t.LoadF32(w.pot, (pz*w.ly+py)*w.lx+px))
		})
	}
}

func (w *cutcp) Verify() error {
	got := w.pot.PeekF32s(w.points())
	for i := range w.golden {
		if got[i] != w.golden[i] {
			return mismatchF32("cutcp", i, got[i], w.golden[i])
		}
	}
	return nil
}

func (w *cutcp) PersistBytes() int64 { return int64(w.points()) * 4 }

// Outputs implements Workload.
func (w *cutcp) Outputs() []memsim.Region { return []memsim.Region{w.pot} }
