package checksum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFig2Conversion pins the paper's Fig. 2 example: float 3.5 (sign 0,
// exponent 10000000, mantissa 1100...0) converts to integer 1080033280.
func TestFig2Conversion(t *testing.T) {
	if got := FloatBits(3.5); got != 1080033280 {
		t.Errorf("FloatBits(3.5) = %d, want 1080033280", got)
	}
}

func TestOrderedBitsMonotone(t *testing.T) {
	vals := []float32{float32(math.Inf(-1)), -100, -1, -0.5, 0, 0.5, 1, 100, float32(math.Inf(1))}
	for i := 1; i < len(vals); i++ {
		if OrderedBits(vals[i-1]) >= OrderedBits(vals[i]) {
			t.Errorf("OrderedBits not monotone at %v < %v", vals[i-1], vals[i])
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Parity: "parity", Modular: "modular", Dual: "modular+parity", Adler32: "adler32",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown Kind should still format")
	}
}

func TestUpdateCosts(t *testing.T) {
	if !(Adler32.UpdateCost() > Dual.UpdateCost() && Dual.UpdateCost() > Parity.UpdateCost()) {
		t.Error("cost ordering should be adler32 > dual > single")
	}
	if Kind(99).UpdateCost() <= 0 {
		t.Error("unknown kind must still have positive cost")
	}
}

func TestStateZeroIdentity(t *testing.T) {
	var s, o State
	s.Merge(o)
	if s != (State{}) {
		t.Errorf("zero merge changed state: %+v", s)
	}
}

func TestStateUpdateAndMatch(t *testing.T) {
	var a, b State
	a.UpdateF32(3.5)
	a.UpdateF32(-1.25)
	b.UpdateF32(-1.25)
	b.UpdateF32(3.5)
	if a != b {
		t.Errorf("order-sensitive state: %+v vs %+v", a, b)
	}
	if !a.Matches(b, Dual) || !a.Matches(b, Parity) || !a.Matches(b, Modular) {
		t.Error("identical states should match under every kind")
	}
	b.UpdateF32(7)
	if a.Matches(b, Dual) {
		t.Error("different states match under Dual")
	}
}

func TestMatchesKindSelectivity(t *testing.T) {
	// Construct states equal in Mod but not Par.
	a := State{Mod: 10, Par: 1}
	b := State{Mod: 10, Par: 2}
	if !a.Matches(b, Modular) {
		t.Error("Modular should ignore parity component")
	}
	if a.Matches(b, Parity) || a.Matches(b, Dual) {
		t.Error("Parity/Dual should see the parity difference")
	}
}

func TestOfF32sMatchesManualFold(t *testing.T) {
	vals := []float32{1, 2.5, -3, 0, 1e20}
	var want State
	for _, v := range vals {
		want.UpdateF32(v)
	}
	if got := OfF32s(vals); got != want {
		t.Errorf("OfF32s = %+v, want %+v", got, want)
	}
}

// TestPropertyCommutativeAssociative: merging per-thread partial states in
// any grouping/order yields the same result — the associativity LP regions
// rely on for parallel reduction.
func TestPropertyCommutativeAssociative(t *testing.T) {
	f := func(vals []uint32, seed int64) bool {
		if len(vals) == 0 {
			return true
		}
		sequential := OfU32s(vals)

		// Random partition into partial states, merged in random order.
		rng := rand.New(rand.NewSource(seed))
		nParts := 1 + rng.Intn(8)
		parts := make([]State, nParts)
		for _, v := range vals {
			parts[rng.Intn(nParts)].Update(v)
		}
		rng.Shuffle(nParts, func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
		var merged State
		for _, p := range parts {
			merged.Merge(p)
		}
		return merged == sequential
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertySingleErrorAlwaysDetected: a single lost store that changes
// a value is always detected by parity, modular, and dual checksums.
func TestPropertySingleErrorAlwaysDetected(t *testing.T) {
	g := func(vals []uint32, idx8 uint8, replacement uint32) bool {
		if len(vals) == 0 {
			return true
		}
		i := int(idx8) % len(vals)
		if vals[i] == replacement {
			return true
		}
		before := OfU32s(vals)
		mut := append([]uint32(nil), vals...)
		mut[i] = replacement
		after := OfU32s(mut)
		// A single changed value must be caught by each scheme.
		return !after.Matches(before, Parity) && !after.Matches(before, Modular) && !after.Matches(before, Dual)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestModularMissesCompensatingErrors(t *testing.T) {
	// Two errors that cancel additively: modular alone is fooled, parity
	// catches it — the motivation for using both simultaneously.
	vals := []uint32{100, 200, 300}
	before := OfU32s(vals)
	mut := []uint32{101, 199, 300} // +1 and -1
	after := OfU32s(mut)
	if !after.Matches(before, Modular) {
		t.Fatal("expected modular false negative for compensating errors")
	}
	if after.Matches(before, Parity) {
		t.Fatal("parity should catch the compensating pair")
	}
	if after.Matches(before, Dual) {
		t.Fatal("dual must catch whatever either component catches")
	}
}

func TestParityMissesDuplicatedError(t *testing.T) {
	// The same XOR delta applied twice cancels in parity; modular sees it.
	vals := []uint32{10, 24, 30}
	before := OfU32s(vals)
	mut := []uint32{10 ^ 4, 24 ^ 4, 30} // both deltas are +4 additively
	after := OfU32s(mut)
	if !after.Matches(before, Parity) {
		t.Fatal("expected parity false negative for duplicated xor delta")
	}
	if after.Matches(before, Modular) || after.Matches(before, Dual) {
		t.Fatal("modular/dual should catch duplicated xor delta")
	}
}

func TestAdlerOrderSensitive(t *testing.T) {
	a := AdlerOfU32s([]uint32{1, 2, 3})
	b := AdlerOfU32s([]uint32{3, 2, 1})
	if a == b {
		t.Error("Adler-32 should depend on order (that is why the paper rejects it for parallel reduction)")
	}
}

func TestMeasureFalseNegativesDetectsMost(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, k := range []Kind{Parity, Modular, Dual, Adler32} {
		res := MeasureFalseNegatives(rng, k, LostStore, 64, 3, 2000)
		if res.Trials < 1900 {
			t.Errorf("%v: too many degenerate trials: %d", k, res.Trials)
		}
		if rate := res.FalseNegativeRate(); rate > 1e-3 {
			t.Errorf("%v: false negative rate %v too high for random errors", k, rate)
		}
		if res.Detected+res.FalseNegatives != res.Trials {
			t.Errorf("%v: counts inconsistent: %+v", k, res)
		}
	}
}

func TestMeasureFalseNegativesSwappedPair(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Order-insensitive checksums cannot see swaps — 100% false negatives.
	res := MeasureFalseNegatives(rng, Dual, SwappedPair, 32, 1, 500)
	if res.FalseNegatives != res.Trials {
		t.Errorf("dual checksum detected a pure swap: %+v", res)
	}
	// Adler-32 sees almost all of them.
	res = MeasureFalseNegatives(rng, Adler32, SwappedPair, 32, 1, 500)
	if res.Detected == 0 {
		t.Errorf("adler32 detected no swaps: %+v", res)
	}
}

func TestMeasureFalseNegativesLostLine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Line-granular loss — LP's actual failure unit — must be detected
	// essentially always by the dual checksum.
	res := MeasureFalseNegatives(rng, Dual, LostLine, 256, 2, 2000)
	if res.FalseNegatives != 0 {
		t.Errorf("dual checksum missed %d lost lines", res.FalseNegatives)
	}
	if res.Detected == 0 {
		t.Error("no lost lines detected at all")
	}
}

func TestMeasureFalseNegativesPanicsOnTinyRegion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for regionLen < 2")
		}
	}()
	MeasureFalseNegatives(rand.New(rand.NewSource(1)), Dual, LostStore, 1, 1, 1)
}

func TestCorruptionString(t *testing.T) {
	if LostStore.String() != "lost-store" || BitFlip.String() != "bit-flip" ||
		SwappedPair.String() != "swapped-pair" || LostLine.String() != "lost-line" {
		t.Error("Corruption.String mismatch")
	}
	if Corruption(9).String() != "unknown" {
		t.Error("unknown corruption should format as unknown")
	}
}

func TestInjectionResultZeroTrials(t *testing.T) {
	if (InjectionResult{}).FalseNegativeRate() != 0 {
		t.Error("zero trials should have rate 0")
	}
}
