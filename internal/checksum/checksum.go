// Package checksum implements the region checksums used by Lazy
// Persistency (IISWC 2020, §II-A and §IV-B): parity (XOR), modular
// (addition), their simultaneous combination, and Adler-32 for
// comparison. It also provides the floating-point-to-integer conversion
// of Fig. 2 and utilities to measure false-negative rates under random
// error injection.
//
// A checksum protects an LP region by folding in every stored value; at
// crash recovery the checksum is recomputed from the durable data and
// compared with the durably stored checksum. Parity and modular checksums
// are commutative and associative, which is what lets thousands of GPU
// threads reduce them in parallel with warp shuffles. Adler-32 is order
// sensitive, which is one of the reasons (besides cost) the paper rejects
// it for the GPU setting.
package checksum

import (
	"fmt"
	"hash/adler32"
	"math"
)

// Kind selects the checksum scheme protecting an LP region.
type Kind int

const (
	// Parity XORs the bit patterns of stored values ("^" in the
	// directive syntax).
	Parity Kind = iota
	// Modular adds the bit patterns of stored values ("+").
	Modular
	// Dual computes Parity and Modular simultaneously; the paper's
	// recommended configuration, with a combined false-negative rate
	// below one in a trillion.
	Dual
	// Adler32 is the compression-library checksum evaluated on CPUs;
	// expensive and order-sensitive, included for the design-space
	// comparison.
	Adler32
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Parity:
		return "parity"
	case Modular:
		return "modular"
	case Dual:
		return "modular+parity"
	case Adler32:
		return "adler32"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// UpdateCost returns the ALU instruction count the timing model charges
// per value folded into a checksum of this kind. Dual pays for both
// accumulators; Adler-32 pays its two chained modular reductions per byte
// group (the paper calls it "significantly more expensive").
func (k Kind) UpdateCost() int {
	switch k {
	case Parity, Modular:
		return 2 // convert + fold
	case Dual:
		return 3 // convert + two folds (conversion shared)
	case Adler32:
		return 12
	}
	return 2
}

// FloatBits converts a float32 to the integer representation used for
// checksum computation (Fig. 2): the sign, exponent and mantissa bits
// concatenated. For 3.5 this is 1080033280. XOR cannot be applied to
// floating point registers in CUDA, so values are reinterpreted this way
// before checksumming; the conversion covers both exponent and mantissa,
// so a persistency failure in either is detectable.
func FloatBits(v float32) uint32 { return math.Float32bits(v) }

// OrderedBits converts a float32 to a totally ordered unsigned integer
// (negative floats map below positive ones). Not needed for XOR/add
// checksums, but useful when a checksum domain must preserve ordering.
func OrderedBits(v float32) uint32 {
	b := math.Float32bits(v)
	if b&0x8000_0000 != 0 {
		return ^b
	}
	return b | 0x8000_0000
}

// State is a running dual checksum accumulator. The zero State is the
// identity: folding no values leaves Mod and Par zero.
//
// Both components are commutative and associative under Merge, so any
// interleaving of per-thread accumulation and tree reduction produces the
// same final value — the property LP regions require (§II-A).
type State struct {
	// Mod is the modular (additive) component.
	Mod uint64
	// Par is the parity (XOR) component.
	Par uint64
}

// Update folds one 32-bit value into the accumulator.
func (s *State) Update(bits uint32) {
	s.Mod += uint64(bits)
	s.Par ^= uint64(bits)
}

// UpdateF32 folds a float32 via FloatBits.
func (s *State) UpdateF32(v float32) { s.Update(FloatBits(v)) }

// Merge combines another accumulator into this one.
func (s *State) Merge(o State) {
	s.Mod += o.Mod
	s.Par ^= o.Par
}

// Matches reports whether two accumulators agree under the given kind:
// Parity compares Par, Modular compares Mod, Dual compares both.
func (s State) Matches(o State, k Kind) bool {
	switch k {
	case Parity:
		return s.Par == o.Par
	case Modular:
		return s.Mod == o.Mod
	default:
		return s.Mod == o.Mod && s.Par == o.Par
	}
}

// OfF32s computes the dual checksum of a value slice — the host-side
// reference used by validation kernels and tests.
func OfF32s(vals []float32) State {
	var s State
	for _, v := range vals {
		s.UpdateF32(v)
	}
	return s
}

// OfU32s computes the dual checksum of raw 32-bit values.
func OfU32s(vals []uint32) State {
	var s State
	for _, v := range vals {
		s.Update(v)
	}
	return s
}

// Mix64 is a SplitMix64-quality mixer, exported for deriving epoch salts
// (distinct launches of the same kernel salt their region checksums so a
// stale entry from a previous launch can never coincide with stale data
// — e.g. an all-zero region whose previous-epoch checksum was also the
// checksum of zeros).
func Mix64(x, seed uint64) uint64 {
	x += 0x9e3779b97f4a7c15 + seed
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AdlerOfU32s computes Adler-32 over the little-endian byte stream of
// vals. Unlike State, the result depends on value order.
func AdlerOfU32s(vals []uint32) uint32 {
	h := adler32.New()
	var buf [4]byte
	for _, v := range vals {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	return h.Sum32()
}
