package checksum

import (
	"math/rand"
	"testing"
)

// BenchmarkStateUpdate measures the per-store checksum fold.
func BenchmarkStateUpdate(b *testing.B) {
	var s State
	for i := 0; i < b.N; i++ {
		s.Update(uint32(i))
	}
	_ = s
}

// BenchmarkOfF32s measures checksumming a block-sized value region.
func BenchmarkOfF32s(b *testing.B) {
	vals := make([]float32, 1024)
	for i := range vals {
		vals[i] = float32(i) * 0.37
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OfF32s(vals)
	}
}

// BenchmarkAdlerOfU32s measures the Adler-32 alternative the paper
// rejects as too expensive.
func BenchmarkAdlerOfU32s(b *testing.B) {
	vals := make([]uint32, 1024)
	for i := range vals {
		vals[i] = uint32(i) * 2654435761
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AdlerOfU32s(vals)
	}
}

// BenchmarkFalseNegativeTrials measures the error-injection harness.
func BenchmarkFalseNegativeTrials(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < b.N; i++ {
		MeasureFalseNegatives(rng, Dual, LostStore, 256, 4, 100)
	}
}
