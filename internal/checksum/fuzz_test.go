package checksum

import (
	"encoding/binary"
	"testing"
)

func u32sOf(data []byte) []uint32 {
	out := make([]uint32, len(data)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return out
}

// FuzzDualDetectsSingleCorruption checks the detection guarantee LP
// recovery rests on: flipping any single bit of any protected value
// always changes the dual checksum (the parity component alone
// guarantees it), so a region persisted with one corrupted value can
// never validate as intact.
func FuzzDualDetectsSingleCorruption(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(1), uint8(31))
	f.Add(make([]byte, 64), uint16(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, idx uint16, bit uint8) {
		vals := u32sOf(data)
		if len(vals) == 0 {
			return
		}
		clean := OfU32s(vals)
		if !clean.Matches(clean, Dual) {
			t.Fatal("checksum does not match itself")
		}
		i := int(idx) % len(vals)
		corrupt := append([]uint32(nil), vals...)
		corrupt[i] ^= 1 << (bit % 32)
		dirty := OfU32s(corrupt)
		if dirty.Matches(clean, Dual) {
			t.Fatalf("single-bit corruption of value %d bit %d undetected: clean=%+v dirty=%+v",
				i, bit%32, clean, dirty)
		}
		if dirty.Matches(clean, Parity) {
			t.Fatalf("parity alone missed a single-bit flip: clean=%+v dirty=%+v", clean, dirty)
		}
	})
}

// FuzzStateMergeOrderInvariant checks the property that makes GPU-side
// reduction legal at all (§II-A): any split of the value stream into
// per-thread partials, merged in any order, equals the serial checksum.
func FuzzStateMergeOrderInvariant(f *testing.F) {
	f.Add([]byte{0xff, 0, 0, 0, 1, 2, 3, 4, 9, 9, 9, 9}, uint16(1))
	f.Add(make([]byte, 32), uint16(3))
	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		vals := u32sOf(data)
		serial := OfU32s(vals)
		if len(vals) == 0 {
			if serial != (State{}) {
				t.Fatal("zero State is not the identity")
			}
			return
		}
		k := int(cut) % len(vals)
		lo, hi := OfU32s(vals[:k]), OfU32s(vals[k:])
		ab := lo
		ab.Merge(hi)
		ba := hi
		ba.Merge(lo)
		if ab != serial || ba != serial {
			t.Fatalf("merge not order-invariant: serial=%+v lo+hi=%+v hi+lo=%+v", serial, ab, ba)
		}
	})
}
