package checksum

import "math/rand"

// Corruption models one persistency failure mode for error injection
// (§IV-B evaluates checksums "through random error injection").
type Corruption int

const (
	// LostStore reverts a value to its pre-store contents (the store
	// never reached NVM) — the canonical LP failure.
	LostStore Corruption = iota
	// BitFlip flips one random bit of a value (media error).
	BitFlip
	// SwappedPair exchanges two values in place; order-insensitive
	// checksums cannot detect this by construction, which is fine for
	// LP (a swap of persisted values is not a persistency failure) but
	// distinguishes Adler-32's sensitivity.
	SwappedPair
	// LostLine reverts a cache-line-sized run of contiguous values to
	// their pre-store contents — the actual granularity at which lazy
	// persistency loses data (whole lines that were never evicted).
	LostLine
)

// String implements fmt.Stringer.
func (c Corruption) String() string {
	switch c {
	case LostStore:
		return "lost-store"
	case BitFlip:
		return "bit-flip"
	case SwappedPair:
		return "swapped-pair"
	case LostLine:
		return "lost-line"
	}
	return "unknown"
}

// InjectionResult counts detection outcomes over a batch of trials.
type InjectionResult struct {
	Trials         int
	Detected       int
	FalseNegatives int
}

// FalseNegativeRate returns the fraction of corrupted regions whose
// checksum still matched.
func (r InjectionResult) FalseNegativeRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.FalseNegatives) / float64(r.Trials)
}

// MeasureFalseNegatives runs trials of: build a region of regionLen random
// values with random "old" contents, compute its checksum, corrupt between
// 1 and maxErrors values with the given corruption kind, recompute, and
// check whether the mismatch is detected under kind k. The rng makes runs
// reproducible.
func MeasureFalseNegatives(rng *rand.Rand, k Kind, c Corruption, regionLen, maxErrors, trials int) InjectionResult {
	if regionLen < 2 {
		panic("checksum: regionLen must be at least 2")
	}
	res := InjectionResult{Trials: trials}
	oldVals := make([]uint32, regionLen)
	vals := make([]uint32, regionLen)
	for trial := 0; trial < trials; trial++ {
		for i := range vals {
			oldVals[i] = rng.Uint32()
			vals[i] = rng.Uint32()
		}
		stored := summarize(k, vals)

		nErr := 1 + rng.Intn(maxErrors)
		changed := false
		for e := 0; e < nErr; e++ {
			i := rng.Intn(regionLen)
			switch c {
			case LostStore:
				if vals[i] != oldVals[i] {
					changed = true
				}
				vals[i] = oldVals[i]
			case BitFlip:
				vals[i] ^= 1 << rng.Intn(32)
				changed = true
			case SwappedPair:
				j := rng.Intn(regionLen)
				if vals[i] != vals[j] {
					changed = true
				}
				vals[i], vals[j] = vals[j], vals[i]
			case LostLine:
				// 32 contiguous 4-byte values = one 128-byte line.
				start := (i / 32) * 32
				for j := start; j < start+32 && j < regionLen; j++ {
					if vals[j] != oldVals[j] {
						changed = true
					}
					vals[j] = oldVals[j]
				}
			}
		}
		if !changed {
			// Degenerate injection (e.g. old value equaled new);
			// not a corruption, skip as a trial that cannot be judged.
			res.Trials--
			continue
		}
		recomputed := summarize(k, vals)
		if recomputed == stored {
			res.FalseNegatives++
		} else {
			res.Detected++
		}
	}
	return res
}

// summarize reduces a value slice to a comparable checksum under kind k.
func summarize(k Kind, vals []uint32) [2]uint64 {
	switch k {
	case Adler32:
		return [2]uint64{uint64(AdlerOfU32s(vals)), 0}
	default:
		s := OfU32s(vals)
		switch k {
		case Parity:
			return [2]uint64{s.Par, 0}
		case Modular:
			return [2]uint64{s.Mod, 0}
		default:
			return [2]uint64{s.Mod, s.Par}
		}
	}
}
