package gpulp_test

// Determinism regression suite for the parallel execution engine: every
// observable output of a run with Config.Workers=N must be bit-identical
// to the serial engine (Workers=1). This is the contract that lets the
// harness and fault campaigns parallelize without perturbing any number
// the repo reports.

import (
	"bytes"
	"reflect"
	"testing"

	"gpulp/internal/core"
	"gpulp/internal/faultsim"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
)

const detWorkers = 8

// kernelRun captures every observable output of one workload run.
type kernelRun struct {
	launch   gpusim.LaunchResult
	finalize gpusim.LaunchResult
	memStats memsim.Stats
	tabStats hashtab.Stats
	nvm      []byte
}

func runWorkload(t *testing.T, name string, workers int, lpCfg *core.Config) kernelRun {
	t.Helper()
	mem := memsim.MustNew(memsim.DefaultConfig())
	devCfg := gpusim.DefaultConfig()
	devCfg.Workers = workers
	dev := gpusim.NewDevice(devCfg, mem)
	w := kernels.New(name, 1)
	w.Setup(dev)
	grid, blk := w.Geometry()

	var lp *core.LP
	if lpCfg != nil {
		lp = core.New(dev, *lpCfg, grid, blk)
	}
	mem.ResetStats()
	var run kernelRun
	run.launch = dev.Launch(name, grid, blk, w.Kernel(lp))
	if f, ok := w.(kernels.Finalizer); ok {
		fname, fg, fb, k := f.FinalizeKernel()
		run.finalize = dev.Launch(fname, fg, fb, k)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s (workers=%d): %v", name, workers, err)
	}
	run.memStats = mem.Stats()
	if lp != nil {
		run.tabStats = *lp.Store().Stats()
	}
	run.nvm = mem.NVMImage()
	return run
}

func compareRuns(t *testing.T, label string, serial, parallel kernelRun) {
	t.Helper()
	if serial.launch != parallel.launch {
		t.Errorf("%s: launch result diverged\nserial:   %+v\nparallel: %+v", label, serial.launch, parallel.launch)
	}
	if serial.finalize != parallel.finalize {
		t.Errorf("%s: finalize result diverged\nserial:   %+v\nparallel: %+v", label, serial.finalize, parallel.finalize)
	}
	if !reflect.DeepEqual(serial.memStats, parallel.memStats) {
		t.Errorf("%s: memory stats diverged\nserial:   %+v\nparallel: %+v", label, serial.memStats, parallel.memStats)
	}
	if serial.tabStats != parallel.tabStats {
		t.Errorf("%s: checksum-store stats diverged\nserial:   %+v\nparallel: %+v", label, serial.tabStats, parallel.tabStats)
	}
	if !bytes.Equal(serial.nvm, parallel.nvm) {
		for i := range serial.nvm {
			if serial.nvm[i] != parallel.nvm[i] {
				t.Errorf("%s: NVM image diverged at byte %#x (serial %#x, parallel %#x)", label, i, serial.nvm[i], parallel.nvm[i])
				break
			}
		}
	}
}

// TestParallelDeterminismKernels runs every registered workload — bare and
// under the default LP configuration — with the serial and parallel
// engines, asserting that kernel cycles, byte/stall totals, NVM write
// counters (total and by-region), collision statistics, and the full
// post-run durable memory image are bit-identical.
func TestParallelDeterminismKernels(t *testing.T) {
	names := append([]string{}, kernels.Names...)
	names = append(names, "megakv-mixed")
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			compareRuns(t, name+"/bare",
				runWorkload(t, name, 1, nil),
				runWorkload(t, name, detWorkers, nil))
			lpCfg := core.DefaultConfig()
			compareRuns(t, name+"/lp",
				runWorkload(t, name, 1, &lpCfg),
				runWorkload(t, name, detWorkers, &lpCfg))
		})
	}
}

// TestParallelDeterminismStores exercises the contended checksum-store
// designs (quadratic probing and cuckoo hashing, lock-free and
// lock-based), whose collision statistics and probe sequences are the
// most order-sensitive state in the runtime.
func TestParallelDeterminismStores(t *testing.T) {
	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"quad-lockfree", core.Config{Store: hashtab.Quad, LockMode: hashtab.LockFree}},
		{"quad-lockbased", core.Config{Store: hashtab.Quad, LockMode: hashtab.LockBased}},
		{"quad-noatomic", core.Config{Store: hashtab.Quad, LockMode: hashtab.NoAtomic}},
		{"cuckoo-lockfree", core.Config{Store: hashtab.Cuckoo, LockMode: hashtab.LockFree}},
		{"chained-lockfree", core.Config{Store: hashtab.Chained, LockMode: hashtab.LockFree}},
		{"sequential-reduce", func() core.Config {
			c := core.DefaultConfig()
			c.Reduction = core.ReduceSequential
			return c
		}()},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.label, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Seed = 0x1157c
			compareRuns(t, "tmm/"+tc.label,
				runWorkload(t, "tmm", 1, &cfg),
				runWorkload(t, "tmm", detWorkers, &cfg))
		})
	}
}

// recoveryRun crashes a kernel mid-launch, recovers, and captures the
// observable outcome.
type recoveryRun struct {
	report core.RecoveryReport
	nvm    []byte
}

func runRecovery(t *testing.T, workers int) recoveryRun {
	t.Helper()
	mem := memsim.MustNew(memsim.DefaultConfig())
	devCfg := gpusim.DefaultConfig()
	devCfg.Workers = workers
	dev := gpusim.NewDevice(devCfg, mem)
	w := kernels.New("tmm", 1)
	w.Setup(dev)
	grid, blk := w.Geometry()
	lp := core.New(dev, core.DefaultConfig(), grid, blk)
	kernel := w.Kernel(lp)

	dev.SetCrashTrigger(&gpusim.CrashTrigger{AfterBlocks: grid.Size() / 2})
	res := dev.Launch("tmm", grid, blk, kernel)
	if !res.Interrupted {
		t.Fatalf("workers=%d: crash trigger did not fire", workers)
	}
	rep, err := lp.ValidateAndRecover(kernel, w.Recompute(), 3)
	if err != nil {
		t.Fatalf("workers=%d: recovery failed: %v", workers, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("workers=%d: post-recovery verify failed: %v", workers, err)
	}
	return recoveryRun{report: rep, nvm: mem.NVMImage()}
}

// TestParallelDeterminismRecovery asserts that a mid-launch crash, the
// validation pass, and the selective re-execution produce identical
// recovery reports and durable images under both engines.
func TestParallelDeterminismRecovery(t *testing.T) {
	serial := runRecovery(t, 1)
	parallel := runRecovery(t, detWorkers)
	if !reflect.DeepEqual(serial.report, parallel.report) {
		t.Errorf("recovery report diverged\nserial:   %+v\nparallel: %+v", serial.report, parallel.report)
	}
	if !bytes.Equal(serial.nvm, parallel.nvm) {
		t.Errorf("post-recovery NVM image diverged")
	}
}

// TestParallelDeterminismFaultCampaign runs a small seeded fault-injection
// campaign under both engines and compares the full structured reports.
func TestParallelDeterminismFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke test skipped in -short mode")
	}
	run := func(workers int) *faultsim.Report {
		c := faultsim.DefaultCampaign(2)
		c.Kernels = []string{"tmm", "megakv-insert"}
		c.Opt.Dev.Workers = workers
		rep, err := c.Run()
		if err != nil {
			t.Fatalf("workers=%d: campaign failed: %v", workers, err)
		}
		return rep
	}
	serial := run(1)
	parallel := run(detWorkers)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("campaign reports diverged\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
