package gpulp_test

// Determinism regression suite for the parallel execution engine: every
// observable output of a run with Config.Workers=N must be bit-identical
// to the serial engine (Workers=1). This is the contract that lets the
// harness and fault campaigns parallelize without perturbing any number
// the repo reports.

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"gpulp/internal/cluster"
	"gpulp/internal/core"
	"gpulp/internal/faultsim"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
)

const detWorkers = 8

// kernelRun captures every observable output of one workload run.
type kernelRun struct {
	launch   gpusim.LaunchResult
	finalize gpusim.LaunchResult
	memStats memsim.Stats
	tabStats hashtab.Stats
	nvm      []byte
}

func runWorkload(t *testing.T, name string, workers int, lpCfg *core.Config) kernelRun {
	t.Helper()
	mem := memsim.MustNew(memsim.DefaultConfig())
	devCfg := gpusim.DefaultConfig()
	devCfg.Workers = workers
	dev := gpusim.MustNew(devCfg, mem)
	w := kernels.New(name, 1)
	w.Setup(dev)
	grid, blk := w.Geometry()

	var lp *core.LP
	if lpCfg != nil {
		lp = core.New(dev, *lpCfg, grid, blk)
	}
	mem.ResetStats()
	var run kernelRun
	run.launch = dev.Launch(name, grid, blk, w.Kernel(lp))
	if f, ok := w.(kernels.Finalizer); ok {
		fname, fg, fb, k := f.FinalizeKernel()
		run.finalize = dev.Launch(fname, fg, fb, k)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s (workers=%d): %v", name, workers, err)
	}
	run.memStats = mem.Stats()
	if lp != nil {
		run.tabStats = *lp.Store().Stats()
	}
	run.nvm = mem.NVMImage()
	return run
}

func compareRuns(t *testing.T, label string, serial, parallel kernelRun) {
	t.Helper()
	if serial.launch != parallel.launch {
		t.Errorf("%s: launch result diverged\nserial:   %+v\nparallel: %+v", label, serial.launch, parallel.launch)
	}
	if serial.finalize != parallel.finalize {
		t.Errorf("%s: finalize result diverged\nserial:   %+v\nparallel: %+v", label, serial.finalize, parallel.finalize)
	}
	if !reflect.DeepEqual(serial.memStats, parallel.memStats) {
		t.Errorf("%s: memory stats diverged\nserial:   %+v\nparallel: %+v", label, serial.memStats, parallel.memStats)
	}
	if serial.tabStats != parallel.tabStats {
		t.Errorf("%s: checksum-store stats diverged\nserial:   %+v\nparallel: %+v", label, serial.tabStats, parallel.tabStats)
	}
	if !bytes.Equal(serial.nvm, parallel.nvm) {
		for i := range serial.nvm {
			if serial.nvm[i] != parallel.nvm[i] {
				t.Errorf("%s: NVM image diverged at byte %#x (serial %#x, parallel %#x)", label, i, serial.nvm[i], parallel.nvm[i])
				break
			}
		}
	}
}

// TestParallelDeterminismKernels runs every registered workload — bare and
// under the default LP configuration — with the serial and parallel
// engines, asserting that kernel cycles, byte/stall totals, NVM write
// counters (total and by-region), collision statistics, and the full
// post-run durable memory image are bit-identical.
func TestParallelDeterminismKernels(t *testing.T) {
	names := append([]string{}, kernels.Names...)
	names = append(names, "megakv-mixed")
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			compareRuns(t, name+"/bare",
				runWorkload(t, name, 1, nil),
				runWorkload(t, name, detWorkers, nil))
			lpCfg := core.DefaultConfig()
			compareRuns(t, name+"/lp",
				runWorkload(t, name, 1, &lpCfg),
				runWorkload(t, name, detWorkers, &lpCfg))
		})
	}
}

// TestParallelDeterminismStores exercises the contended checksum-store
// designs (quadratic probing and cuckoo hashing, lock-free and
// lock-based), whose collision statistics and probe sequences are the
// most order-sensitive state in the runtime.
func TestParallelDeterminismStores(t *testing.T) {
	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"quad-lockfree", core.Config{Store: hashtab.Quad, LockMode: hashtab.LockFree}},
		{"quad-lockbased", core.Config{Store: hashtab.Quad, LockMode: hashtab.LockBased}},
		{"quad-noatomic", core.Config{Store: hashtab.Quad, LockMode: hashtab.NoAtomic}},
		{"cuckoo-lockfree", core.Config{Store: hashtab.Cuckoo, LockMode: hashtab.LockFree}},
		{"chained-lockfree", core.Config{Store: hashtab.Chained, LockMode: hashtab.LockFree}},
		{"sequential-reduce", func() core.Config {
			c := core.DefaultConfig()
			c.Reduction = core.ReduceSequential
			return c
		}()},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.label, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Seed = 0x1157c
			compareRuns(t, "tmm/"+tc.label,
				runWorkload(t, "tmm", 1, &cfg),
				runWorkload(t, "tmm", detWorkers, &cfg))
		})
	}
}

// recoveryRun crashes a kernel mid-launch, recovers, and captures the
// observable outcome.
type recoveryRun struct {
	report core.RecoveryReport
	nvm    []byte
}

func runRecovery(t *testing.T, workers int) recoveryRun {
	t.Helper()
	mem := memsim.MustNew(memsim.DefaultConfig())
	devCfg := gpusim.DefaultConfig()
	devCfg.Workers = workers
	dev := gpusim.MustNew(devCfg, mem)
	w := kernels.New("tmm", 1)
	w.Setup(dev)
	grid, blk := w.Geometry()
	lp := core.New(dev, core.DefaultConfig(), grid, blk)
	kernel := w.Kernel(lp)

	dev.SetCrashTrigger(&gpusim.CrashTrigger{AfterBlocks: grid.Size() / 2})
	res := dev.Launch("tmm", grid, blk, kernel)
	if !res.Interrupted {
		t.Fatalf("workers=%d: crash trigger did not fire", workers)
	}
	rep, err := lp.ValidateAndRecover(kernel, w.Recompute(), 3)
	if err != nil {
		t.Fatalf("workers=%d: recovery failed: %v", workers, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("workers=%d: post-recovery verify failed: %v", workers, err)
	}
	return recoveryRun{report: rep, nvm: mem.NVMImage()}
}

// TestParallelDeterminismRecovery asserts that a mid-launch crash, the
// validation pass, and the selective re-execution produce identical
// recovery reports and durable images under both engines.
func TestParallelDeterminismRecovery(t *testing.T) {
	serial := runRecovery(t, 1)
	parallel := runRecovery(t, detWorkers)
	if !reflect.DeepEqual(serial.report, parallel.report) {
		t.Errorf("recovery report diverged\nserial:   %+v\nparallel: %+v", serial.report, parallel.report)
	}
	if !bytes.Equal(serial.nvm, parallel.nvm) {
		t.Errorf("post-recovery NVM image diverged")
	}
}

// TestParallelDeterminismFaultCampaign runs a small seeded fault-injection
// campaign under both engines and compares the full structured reports.
func TestParallelDeterminismFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke test skipped in -short mode")
	}
	run := func(workers int) *faultsim.Report {
		c := faultsim.DefaultCampaign(2)
		c.Kernels = []string{"tmm", "megakv-insert"}
		c.Opt.Dev.Workers = workers
		rep, err := c.Run()
		if err != nil {
			t.Fatalf("workers=%d: campaign failed: %v", workers, err)
		}
		return rep
	}
	serial := run(1)
	parallel := run(detWorkers)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("campaign reports diverged\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// selfHealRun captures every observable output of one self-healing
// recovery under the online media-error process: the heal report (with
// its quarantine sets), the typed degraded outcome, and the durable image.
type selfHealRun struct {
	rep core.HealReport
	deg *core.DegradedError
	nvm []byte
}

func runSelfHeal(t *testing.T, workers int) selfHealRun {
	t.Helper()
	mcfg := memsim.DefaultConfig()
	mcfg.CacheBytes = 256 << 10
	mcfg.Fault = memsim.FaultConfig{Enabled: true, Seed: 77, TransientPerWrite: 0.05, StuckPerWrite: 0.01}
	mem := memsim.MustNew(mcfg)
	dcfg := gpusim.DefaultConfig()
	dcfg.Workers = workers
	dcfg.WatchdogSteps = 50_000
	dev := gpusim.MustNew(dcfg, mem)

	grid, blk := gpusim.D1(32), gpusim.D1(64)
	n := grid.Size() * blk.Size()
	locks := dev.Alloc("locks", grid.Size()*8)
	out := dev.Alloc("out", n*4)
	locks.HostZero()
	out.HostZero()
	lp := core.New(dev, core.DefaultConfig(), grid, blk)
	kernel := func(b *gpusim.Block) {
		b.ForAll(func(th *gpusim.Thread) {
			if th.Linear == 0 {
				for th.AtomicCASU64(locks, b.LinearIdx, 0, 1) != 0 {
					th.Op(1)
				}
			}
		})
		r := lp.Begin(b)
		b.ForAll(func(th *gpusim.Thread) {
			gid := th.GlobalLinear()
			v := uint32(gid)*2654435761 + 12345
			th.StoreU32(out, gid, v)
			r.Update(th, v)
		})
		b.ForAll(func(th *gpusim.Thread) {
			if th.Linear == 0 {
				th.AtomicExchU64(locks, b.LinearIdx, 0)
			}
		})
		r.Commit()
	}
	recompute := func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(th *gpusim.Thread) {
			r.Update(th, th.LoadU32(out, th.GlobalLinear()))
		})
	}

	// A planted stuck-at pins block 9's lock word "held": re-execution
	// livelocks and the watchdog must abort it identically in both engines.
	mem.PlantStuckAt(locks.Base+9*8, 0, 1)
	res := dev.Launch("lockfill", grid, blk, kernel)
	if res.Watchdog == nil {
		mem.Crash()
	}
	rep, err := lp.SelfHeal(kernel, recompute, core.HealOpts{
		MaxAttempts: 5,
		RegionOf: func(line uint64) int {
			if line < out.Base || line >= out.Base+uint64(n*4) {
				return -1
			}
			return int(line-out.Base) / (blk.Size() * 4)
		},
	})
	var deg *core.DegradedError
	if err != nil && !errors.As(err, &deg) {
		t.Fatalf("workers=%d: self-heal failed: %v", workers, err)
	}
	return selfHealRun{rep: rep, deg: deg, nvm: mem.NVMImage()}
}

// TestParallelDeterminismSelfHeal drives the full self-healing stack —
// online media-error process, ECC scrubs, watchdog-aborted re-execution,
// quarantine — under both engines and asserts bit-identical heal reports,
// quarantine sets, typed degraded outcomes, and durable images.
func TestParallelDeterminismSelfHeal(t *testing.T) {
	serial := runSelfHeal(t, 1)
	parallel := runSelfHeal(t, detWorkers)
	if !reflect.DeepEqual(serial.rep, parallel.rep) {
		t.Errorf("heal reports diverged\nserial:   %+v\nparallel: %+v", serial.rep, parallel.rep)
	}
	if !reflect.DeepEqual(serial.deg, parallel.deg) {
		t.Errorf("degraded outcomes diverged\nserial:   %+v\nparallel: %+v", serial.deg, parallel.deg)
	}
	if !bytes.Equal(serial.nvm, parallel.nvm) {
		t.Errorf("post-heal NVM images diverged")
	}
	if serial.rep.WatchdogAborts == 0 {
		t.Errorf("planted stuck lock never tripped the watchdog: %+v", serial.rep)
	}
}

// TestParallelDeterminismRateSweep runs a reduced media-error rate sweep
// with the simulator's parallel engine enabled under both Workers values
// and compares the full structured reports.
func TestParallelDeterminismRateSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("rate-sweep smoke test skipped in -short mode")
	}
	run := func(workers int) *faultsim.RateReport {
		s := faultsim.DefaultRateSweep(2)
		s.Rates = []float64{0.02, 0.15}
		s.StuckFrac = 0.3
		s.Blocks, s.BlockThreads = 16, 32
		s.Opt.Dev.Workers = workers
		rep, err := s.Run()
		if err != nil {
			t.Fatalf("workers=%d: rate sweep failed: %v", workers, err)
		}
		return rep
	}
	serial := run(1)
	parallel := run(detWorkers)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("rate-sweep reports diverged\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// clusterRun captures every observable output of one multi-device
// cluster run with injected failures.
type clusterRun struct {
	report  []byte // report JSON
	errText string
	pool    []byte
}

func runCluster(t *testing.T, workers int) clusterRun {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Devices = 3
	cfg.Jobs = 6
	cfg.BlocksPerJob = 2
	cfg.BlockThreads = 32
	cfg.Seed = 0x7001
	cfg.Dev.Workers = workers
	cfg.Failures = []cluster.FailurePlan{
		{Job: 1, Kind: cluster.Hang, AfterBlocks: 1},
		{Job: 4, Kind: cluster.FailStop, AfterBlocks: 1},
	}
	cl := cluster.MustNew(cfg)
	rep, err := cl.Run()
	if err != nil {
		t.Fatalf("workers=%d: cluster run failed: %v", workers, err)
	}
	if verr := cl.Verify(); verr != nil {
		t.Fatalf("workers=%d: pool audit failed: %v", workers, verr)
	}
	js, jerr := json.Marshal(rep)
	if jerr != nil {
		t.Fatal(jerr)
	}
	return clusterRun{report: js, pool: cl.Pool().NVMImage()}
}

// TestParallelDeterminismCluster drives a 3-device cluster through a hang
// and a fail-stop — heartbeat-timeout detection, shard fencing, durable
// harvest, cross-device re-execution — under both engines and asserts
// byte-identical cluster reports and shared pool images.
func TestParallelDeterminismCluster(t *testing.T) {
	serial := runCluster(t, 1)
	parallel := runCluster(t, detWorkers)
	if !bytes.Equal(serial.report, parallel.report) {
		t.Errorf("cluster reports diverged\nserial:   %s\nparallel: %s", serial.report, parallel.report)
	}
	if !bytes.Equal(serial.pool, parallel.pool) {
		t.Errorf("shared pool images diverged")
	}
}

// TestParallelDeterminismClusterCampaign runs a reduced multi-device
// failover campaign under both gpusim engine widths and both host
// fan-out widths, comparing the full structured reports — the
// acceptance pin for the cluster's Workers=1 vs Workers=8 contract.
func TestParallelDeterminismClusterCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster campaign smoke test skipped in -short mode")
	}
	run := func(workers, hostPar int) *faultsim.ClusterReport {
		c := faultsim.DefaultClusterCampaign(2)
		c.DeviceCounts = []int{2, 3}
		c.Jobs = 4
		c.BlocksPerJob = 2
		c.BlockThreads = 32
		c.Opt.Dev.Workers = workers
		c.Parallel = hostPar
		rep, err := c.Run()
		if err != nil {
			t.Fatalf("workers=%d parallel=%d: cluster campaign failed: %v", workers, hostPar, err)
		}
		return rep
	}
	base := run(1, 1)
	for _, alt := range []*faultsim.ClusterReport{run(detWorkers, 1), run(1, 8), run(detWorkers, 8)} {
		if !reflect.DeepEqual(base, alt) {
			t.Errorf("cluster campaign reports diverged\nbase: %+v\nalt:  %+v", base, alt)
		}
	}
}

// replicatedRun captures every observable output of one replicated
// cluster run: the structured report plus the shared durable pool.
type replicatedRun struct {
	report []byte // report JSON
	pool   []byte
}

func runReplicatedCluster(t *testing.T, workers int) replicatedRun {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Devices = 3
	cfg.Jobs = 6
	cfg.BlocksPerJob = 2
	cfg.BlockThreads = 32
	cfg.Seed = 0x7002
	cfg.Replicas = 2
	cfg.Placer = cluster.Affinity
	cfg.Model = "sbrp"
	cfg.Dev.Workers = workers
	cfg.Failures = []cluster.FailurePlan{
		{Job: 2, Kind: cluster.FailStop, AfterBlocks: 1},
	}
	cl := cluster.MustNew(cfg)
	rep, err := cl.Run()
	if err != nil {
		t.Fatalf("workers=%d: replicated cluster run failed: %v", workers, err)
	}
	if verr := cl.Verify(); verr != nil {
		t.Fatalf("workers=%d: pool audit failed: %v", workers, verr)
	}
	if rep.Adopted == 0 {
		t.Fatalf("workers=%d: failover never adopted a replica: %+v", workers, rep)
	}
	if rep.ReexecutedBlocks != 0 {
		t.Fatalf("workers=%d: replicated failover re-executed %d blocks", workers, rep.ReexecutedBlocks)
	}
	js, jerr := json.Marshal(rep)
	if jerr != nil {
		t.Fatal(jerr)
	}
	return replicatedRun{report: js, pool: cl.Pool().NVMImage()}
}

// TestParallelDeterminismReplicatedCluster drives a 3-device cluster
// with R=2 replicated placement through a fail-stop — replica fan-out
// inside the shared-clock loop, quorum harvest, freshness judging,
// zero-re-execution adoption, online rebalance — under both engine
// widths and asserts byte-identical reports and pool images.
func TestParallelDeterminismReplicatedCluster(t *testing.T) {
	serial := runReplicatedCluster(t, 1)
	parallel := runReplicatedCluster(t, detWorkers)
	if !bytes.Equal(serial.report, parallel.report) {
		t.Errorf("replicated cluster reports diverged\nserial:   %s\nparallel: %s",
			serial.report, parallel.report)
	}
	if !bytes.Equal(serial.pool, parallel.pool) {
		t.Errorf("replicated cluster NVM images diverged between engines")
	}
}

// TestParallelDeterminismReplicaCampaign runs a reduced replicated
// failover campaign under both gpusim engine widths and both host
// fan-out widths, comparing the full structured reports — the
// acceptance pin for the -replicas campaign's determinism contract.
func TestParallelDeterminismReplicaCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("replica campaign smoke test skipped in -short mode")
	}
	run := func(workers, hostPar int) *faultsim.ReplicaReport {
		c := faultsim.DefaultReplicaCampaign(2)
		c.Devices = 3
		c.Jobs = 4
		c.BlocksPerJob = 2
		c.BlockThreads = 32
		c.Opt.Dev.Workers = workers
		c.Parallel = hostPar
		rep, err := c.Run()
		if err != nil {
			t.Fatalf("workers=%d parallel=%d: replica campaign failed: %v", workers, hostPar, err)
		}
		return rep
	}
	base := run(1, 1)
	for _, alt := range []*faultsim.ReplicaReport{run(detWorkers, 1), run(1, 8), run(detWorkers, 8)} {
		if !reflect.DeepEqual(base, alt) {
			t.Errorf("replica campaign reports diverged\nbase: %+v\nalt:  %+v", base, alt)
		}
	}
}
