module gpulp

go 1.22
