// Kvstore: the paper's real-world application (§VII-4) — MEGA-KV, a
// GPU-resident key-value store — made crash-recoverable with Lazy
// Persistency.
//
// A batch of inserts runs under LP (each thread block of the batch kernel
// is an LP region); the machine crashes before the index is fully
// persisted; validation finds the batch blocks whose index updates were
// lost; re-executing only those blocks repairs the store, and set
// semantics make the re-execution idempotent.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/megakv"
	"gpulp/internal/memsim"
)

const (
	numOps       = 8192
	blockThreads = 128
)

func main() {
	memCfg := memsim.DefaultConfig()
	memCfg.CacheBytes = 128 << 10 // small cache so the crash is partial
	dev := gpusim.MustNew(gpusim.DefaultConfig(), memsim.MustNew(memCfg))

	store := megakv.NewStore(dev, numOps)
	keys := dev.Alloc("keys", numOps*8)
	vals := dev.Alloc("vals", numOps*8)
	keyList := make([]uint64, numOps)
	valList := make([]uint64, numOps)
	for i := range keyList {
		keyList[i] = uint64(i)*2654435761 + 1
		valList[i] = uint64(i) * 7
	}
	keys.HostWriteU64s(keyList)
	vals.HostWriteU64s(valList)

	grid, blk := gpusim.D1(numOps/blockThreads), gpusim.D1(blockThreads)
	lp := core.New(dev, core.DefaultConfig(), grid, blk)

	// The insert batch kernel: one thread per operation; the block
	// checksum covers key^value of every applied mutation.
	insertBatch := func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			i := t.GlobalLinear()
			key := t.LoadU64(keys, i)
			val := t.LoadU64(vals, i)
			if !store.Insert(t, key, val) {
				panic("bucket overflow")
			}
			r.Update(t, uint32(key)^uint32(val))
		})
		r.Commit()
	}
	res := dev.Launch("megakv-insert", grid, blk, insertBatch)
	fmt.Printf("inserted %d records in %d blocks (%d simulated cycles)\n",
		numOps, res.Blocks, res.Cycles)

	dev.Mem().Crash()
	fmt.Println("-- crash --")

	// How much of the index survived durably?
	durable := 0
	for _, k := range keyList {
		if _, ok := store.NVMGet(k); ok {
			durable++
		}
	}
	fmt.Printf("durable after crash: %d/%d records\n", durable, numOps)

	// Validation re-searches every key of the batch and refolds what it
	// finds; blocks with lost updates mismatch and re-execute.
	recompute := func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			i := t.GlobalLinear()
			key := t.LoadU64(keys, i)
			val, ok := store.Search(t, key)
			if !ok {
				r.Update(t, 0xBAD0BAD0)
				return
			}
			r.Update(t, uint32(key)^uint32(val))
		})
	}
	rep, err := lp.ValidateAndRecover(insertBatch, recompute, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep)

	for i, k := range keyList {
		v, ok := store.HostGet(k)
		if !ok || v != valList[i] {
			panic(fmt.Sprintf("key %#x -> %#x (found=%v), want %#x", k, v, ok, valList[i]))
		}
	}
	fmt.Printf("all %d records verified after recovery\n", numOps)

	// A second crash immediately after recovery must lose nothing: eager
	// recovery flushed the repairs.
	dev.Mem().Crash()
	for _, k := range keyList {
		if _, ok := store.NVMGet(k); !ok {
			panic("eager recovery left a record unpersisted")
		}
	}
	fmt.Println("post-recovery crash loses nothing (eager recovery persisted the repairs)")
}
