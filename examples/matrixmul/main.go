// Matrixmul: the paper's running example (Listings 1-2) end to end, with
// a twist — the kernel is written with *no* checksum code at all, and the
// runtime equivalent of the #pragma nvm lpcuda_checksum directive
// (LP.Instrument) adds Lazy Persistency automatically by hooking the
// kernel's stores to the protected output matrix.
//
// The example then compares the measured overhead of three design points
// from the paper's exploration — the quadratic-probing hash table, the
// cuckoo hash table, and the checksum global array (§V) — and finishes
// with a crash and a selective recovery.
//
//	go run ./examples/matrixmul
package main

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/hashtab"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
)

func main() {
	fmt.Println("tiled matrix multiplication under Lazy Persistency")
	fmt.Println()

	// Baseline: no persistency support at all.
	devBase := gpusim.MustNew(gpusim.DefaultConfig(), memsim.MustNew(memsim.DefaultConfig()))
	wb := kernels.New("tmm", 1)
	wb.Setup(devBase)
	grid, blk := wb.Geometry()
	base := devBase.Launch("tmm-baseline", grid, blk, wb.Kernel(nil))
	if err := wb.Verify(); err != nil {
		panic(err)
	}
	fmt.Printf("baseline: %d blocks, %d cycles (output verified)\n\n", base.Blocks, base.Cycles)

	// The design-space walk of §IV: same kernel, three checksum stores.
	for _, store := range []hashtab.Kind{hashtab.Quad, hashtab.Cuckoo, hashtab.GlobalArray} {
		dev := gpusim.MustNew(gpusim.DefaultConfig(), memsim.MustNew(memsim.DefaultConfig()))
		w := kernels.New("tmm", 1)
		w.Setup(dev)
		cfg := core.DefaultConfig()
		cfg.Store = store
		lp := core.New(dev, cfg, grid, blk)
		res := dev.Launch("tmm-"+store.String(), grid, blk, w.Kernel(lp))
		if err := w.Verify(); err != nil {
			panic(err)
		}
		st := lp.Store().Stats()
		fmt.Printf("%-13s %8d cycles  overhead %6.2f%%  collisions %5d  table %6d B\n",
			store, res.Cycles, (float64(res.Cycles)/float64(base.Cycles)-1)*100,
			st.Collisions, lp.TableBytes())
	}

	// Directive-style instrumentation: a plain kernel (not a single line
	// of LP code) protected by declaring which region is persistent.
	fmt.Println("\ndirective-style (LP.Instrument) run with crash recovery:")
	memCfg := memsim.DefaultConfig()
	memCfg.CacheBytes = 32 << 10 // small cache: the crash bites, but only partially
	dev := gpusim.MustNew(gpusim.DefaultConfig(), memsim.MustNew(memCfg))

	const n, tile = 128, 8
	a := dev.Alloc("A", n*n*4)
	bm := dev.Alloc("B", n*n*4)
	c := dev.Alloc("C", n*n*4)
	av := make([]float32, n*n)
	bv := make([]float32, n*n)
	for i := range av {
		av[i] = float32(i%17) * 0.25
		bv[i] = float32(i%13) * 0.5
	}
	a.HostWriteF32s(av)
	bm.HostWriteF32s(bv)
	c.HostZero()

	g2, b2 := gpusim.D2(n/tile, n/tile), gpusim.D2(tile, tile)
	plain := func(b *gpusim.Block) {
		tileA := b.SharedF32("A", tile*tile)
		tileB := b.SharedF32("B", tile*tile)
		acc := make([]float32, tile*tile)
		for i := 0; i < n/tile; i++ {
			b.ForAll(func(t *gpusim.Thread) {
				row := b.Idx.Y*tile + t.Idx.Y
				col := b.Idx.X*tile + t.Idx.X
				tileA[t.Idx.Y*tile+t.Idx.X] = t.LoadF32(a, row*n+i*tile+t.Idx.X)
				tileB[t.Idx.Y*tile+t.Idx.X] = t.LoadF32(bm, (i*tile+t.Idx.Y)*n+col)
				t.Op(6)
			})
			b.ForAll(func(t *gpusim.Thread) {
				s := acc[t.Linear]
				for j := 0; j < tile; j++ {
					s += tileA[t.Idx.Y*tile+j] * tileB[j*tile+t.Idx.X]
				}
				t.Op(3 * tile)
				acc[t.Linear] = s
			})
		}
		b.ForAll(func(t *gpusim.Thread) {
			row := b.Idx.Y*tile + t.Idx.Y
			col := b.Idx.X*tile + t.Idx.X
			t.StoreF32(c, row*n+col, acc[t.Linear]) // no checksum code here
		})
	}

	lp := core.New(dev, core.DefaultConfig(), g2, b2)
	instrumented := lp.Instrument(plain, c) // "C is persistent" — that is the whole annotation
	dev.Launch("tmm-instrumented", g2, b2, instrumented)

	dev.Mem().Crash()
	recompute := core.RecomputeOver(c, func(b *gpusim.Block) []int {
		idxs := make([]int, 0, tile*tile)
		for ty := 0; ty < tile; ty++ {
			for tx := 0; tx < tile; tx++ {
				idxs = append(idxs, (b.Idx.Y*tile+ty)*n+b.Idx.X*tile+tx)
			}
		}
		return idxs
	})
	failed, _, _ := lp.Validate(recompute)
	rep, err := lp.ValidateAndRecover(instrumented, recompute, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("crash lost %d/%d regions; %v\n", len(failed), g2.Size(), rep)

	// Verify against a host reference.
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			var want float32
			for k := 0; k < n; k++ {
				want += av[row*n+k] * bv[k*n+col]
			}
			if got := c.PeekF32(row*n + col); got != want {
				panic(fmt.Sprintf("C[%d][%d] = %v, want %v", row, col, got, want))
			}
		}
	}
	fmt.Println("recovered C matches the host reference exactly")
}
