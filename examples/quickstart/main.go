// Quickstart: protect a GPU kernel with Lazy Persistency in a dozen
// lines, crash, and recover.
//
// The example builds a simulated NVM-backed GPU, writes a trivial kernel
// whose every store is folded into a per-block checksum (the Listing 2
// pattern from the paper), crashes the machine mid-persistence, and uses
// the LP runtime to detect and re-execute exactly the thread blocks whose
// stores were lost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"gpulp/internal/checksum"
	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

func main() {
	// A Volta-like device over NVM-backed memory with a small write-back
	// cache (small so the crash loses something interesting).
	memCfg := memsim.DefaultConfig()
	memCfg.CacheBytes = 64 << 10
	mem := memsim.MustNew(memCfg)
	dev := gpusim.MustNew(gpusim.DefaultConfig(), mem)

	// Fig. 2 from the paper: floats are checksummed via their bit pattern.
	fmt.Printf("FloatBits(3.5) = %d (paper Fig. 2: 1080033280)\n\n", checksum.FloatBits(3.5))

	grid, blk := gpusim.D1(64), gpusim.D1(128)
	out := dev.Alloc("out", grid.Size()*blk.Size()*4)
	out.HostZero()

	// The LP runtime: one checksum-global-array slot per thread block,
	// dual (modular+parity) checksums, warp-shuffle reduction — the
	// paper's final design (§V, Table V).
	lp := core.New(dev, core.DefaultConfig(), grid, blk)

	// The kernel: every persistent store is paired with a checksum
	// Update; Commit reduces and publishes the block checksum. Passing a
	// nil runtime to Begin turns all of it into no-ops — the same body
	// is the baseline.
	kernel := func(b *gpusim.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpusim.Thread) {
			v := float32(t.GlobalLinear()) * 0.5
			t.StoreF32(out, t.GlobalLinear(), v)
			r.UpdateF32(t, v)
		})
		r.Commit()
	}

	res := dev.Launch("fill", grid, blk, kernel)
	fmt.Printf("kernel ran: %d blocks, %d simulated cycles\n", res.Blocks, res.Cycles)
	fmt.Printf("unpersisted cache lines: %d\n", mem.DirtyLines())

	// Crash. Everything still sitting in the cache is gone; whatever was
	// naturally evicted survives in NVM. LP never flushed anything.
	mem.Crash()
	fmt.Println("\n-- crash --")

	// Validation recomputes each block's checksums from the durable data
	// and compares against the (also durable) checksum array.
	recompute := func(b *gpusim.Block, r *core.Region) {
		b.ForAll(func(t *gpusim.Thread) {
			r.UpdateF32(t, t.LoadF32(out, t.GlobalLinear()))
		})
	}
	failed, _, _ := lp.Validate(recompute)
	fmt.Printf("validation found %d of %d regions damaged\n", len(failed), grid.Size())

	// Eager recovery: re-execute exactly the failed blocks, flush, done.
	rep, err := lp.ValidateAndRecover(kernel, recompute, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep)

	// Prove it: every element has its intended value again.
	for i := 0; i < grid.Size()*blk.Size(); i++ {
		if got, want := out.PeekF32(i), float32(i)*0.5; got != want {
			panic(fmt.Sprintf("out[%d] = %v, want %v", i, got, want))
		}
	}
	fmt.Println("all values verified after recovery")
}
