// Jacobi: Lazy Persistency on a long-running iterative application —
// the class of workload (§I: "scientific computation using iterative
// approaches") whose crash recovery motivates GPU persistency.
//
// A 2D Jacobi stencil relaxes a temperature field over many iterations
// with double buffering. Each iteration runs as one LP-protected launch
// (regions = thread blocks writing the destination buffer); a whole-cache
// flush at each iteration boundary (§IV-A periodic checkpointing) makes
// the previous iterate durable, so a crash costs at most the in-flight
// iteration — and LP's validation tells exactly which of its blocks need
// re-execution.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

const (
	n     = 128 // field edge
	tile  = 8
	iters = 12
)

func main() {
	memCfg := memsim.DefaultConfig()
	memCfg.CacheBytes = 32 << 10
	dev, mem := gpusim.MustNew(gpusim.DefaultConfig(), memsim.MustNew(memCfg)), (*memsim.Memory)(nil)
	mem = dev.Mem()

	bufs := [2]memsim.Region{
		dev.Alloc("jacobi.a", n*n*4),
		dev.Alloc("jacobi.b", n*n*4),
	}
	// Initial field: hot left edge, cold elsewhere; boundaries fixed.
	init := make([]float32, n*n)
	for y := 0; y < n; y++ {
		init[y*n] = 100
	}
	bufs[0].HostWriteF32s(init)
	bufs[1].HostWriteF32s(init)

	grid, blk := gpusim.D2(n/tile, n/tile), gpusim.D2(tile, tile)
	lp := core.New(dev, core.DefaultConfig(), grid, blk)

	// One relaxation sweep from src into dst, LP-protected.
	sweep := func(src, dst memsim.Region) gpusim.KernelFunc {
		return func(b *gpusim.Block) {
			r := lp.Begin(b)
			b.ForAll(func(t *gpusim.Thread) {
				x := b.Idx.X*tile + t.Idx.X
				y := b.Idx.Y*tile + t.Idx.Y
				var v float32
				if x == 0 || y == 0 || x == n-1 || y == n-1 {
					v = t.LoadF32(src, y*n+x) // fixed boundary
				} else {
					v = 0.25 * (t.LoadF32(src, y*n+x-1) + t.LoadF32(src, y*n+x+1) +
						t.LoadF32(src, (y-1)*n+x) + t.LoadF32(src, (y+1)*n+x))
					t.Op(6)
				}
				t.StoreF32(dst, y*n+x, v)
				r.UpdateF32(t, v)
			})
			r.Commit()
		}
	}
	recomputeOf := func(dst memsim.Region) core.RecomputeFunc {
		return func(b *gpusim.Block, r *core.Region) {
			b.ForAll(func(t *gpusim.Thread) {
				x := b.Idx.X*tile + t.Idx.X
				y := b.Idx.Y*tile + t.Idx.Y
				r.UpdateF32(t, t.LoadF32(dst, y*n+x))
			})
		}
	}

	// Host golden: the same sweeps on the CPU.
	golden := computeGolden(init)

	// Run, checkpointing each completed iteration, and crash mid-run.
	crashAt := 8
	var cur int
	for it := 0; it < crashAt; it++ {
		src, dst := bufs[it%2], bufs[(it+1)%2]
		lp.SetEpoch(uint64(it)) // distinct iterations must never cross-validate
		dev.Launch(fmt.Sprintf("sweep-%d", it), grid, blk, sweep(src, dst))
		if it < crashAt-1 {
			lp.Checkpoint() // iteration boundary: previous iterate durable
		}
		cur = (it + 1) % 2
	}
	fmt.Printf("ran %d iterations, checkpointing each; crashing during the un-flushed iteration %d\n",
		crashAt, crashAt-1)
	mem.Crash()

	// Recovery: only the in-flight iteration can be damaged. Validate it
	// and re-execute its failed blocks (reading the durable previous
	// iterate).
	src, dst := bufs[(crashAt-1)%2], bufs[cur]
	failed, _, _ := lp.Validate(recomputeOf(dst))
	rep, err := lp.ValidateAndRecover(sweep(src, dst), recomputeOf(dst), 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("crash damaged %d/%d regions of the in-flight iteration; %v\n",
		len(failed), grid.Size(), rep)

	// Resume the remaining iterations as if nothing happened.
	for it := crashAt; it < iters; it++ {
		src, dst := bufs[it%2], bufs[(it+1)%2]
		lp.SetEpoch(uint64(it))
		dev.Launch(fmt.Sprintf("sweep-%d", it), grid, blk, sweep(src, dst))
		lp.Checkpoint()
		cur = (it + 1) % 2
	}

	// The recovered-and-resumed field must equal the crash-free golden.
	final := bufs[cur].PeekF32s(n * n)
	for i := range golden {
		if final[i] != golden[i] {
			panic(fmt.Sprintf("field[%d] = %v, want %v", i, final[i], golden[i]))
		}
	}
	fmt.Printf("field after %d iterations matches the crash-free reference exactly\n", iters)
	fmt.Printf("center temperature: %.4f\n", final[(n/2)*n+n/2])
}

// computeGolden runs the same double-buffered sweeps on the host.
func computeGolden(init []float32) []float32 {
	a := append([]float32(nil), init...)
	b := append([]float32(nil), init...)
	for it := 0; it < iters; it++ {
		src, dst := a, b
		if it%2 == 1 {
			src, dst = b, a
		}
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if x == 0 || y == 0 || x == n-1 || y == n-1 {
					dst[y*n+x] = src[y*n+x]
					continue
				}
				dst[y*n+x] = 0.25 * (src[y*n+x-1] + src[y*n+x+1] + src[(y-1)*n+x] + src[(y+1)*n+x])
			}
		}
	}
	if iters%2 == 1 {
		return b
	}
	return a
}
