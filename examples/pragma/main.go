// Pragma: the directive-based programming support of §VI, end to end.
// The program feeds the paper's Listings 5-6 (a CUDA matrix-multiply
// kernel annotated with #pragma nvm lpcuda_* directives) through the
// translator and prints the instrumented program and the generated
// check-and-recovery kernel (Listing 7).
//
//	go run ./examples/pragma
package main

import (
	"fmt"

	"gpulp/internal/directive"
)

const annotated = `__global__ void MatrixMulCUDA(float *C, float *A, float *B, int wA, int wB) {
    int bx = blockIdx.x;
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    float Csub = computeTile(A, B, wA, wB);
    int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;
#pragma nvm lpcuda_checksum("+", checksumMM, blockIdx.x, blockIdx.y)
    C[c + wB * ty + tx] = Csub;
}

void launch(dim3 grid, dim3 threads) {
#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 1)
    MatrixMulCUDA<<<grid, threads, 0, stream>>>(d_C, d_A, d_B, dimsA.x, dimsB.x);
}
`

func main() {
	fmt.Println("== annotated source (paper Listings 5-6) ==")
	fmt.Print(annotated)

	out, err := directive.Translate(annotated)
	if err != nil {
		panic(err)
	}

	fmt.Println("== parsed directives ==")
	for _, ti := range out.Tables {
		fmt.Printf("  init: table %s with %s elements, %s checksum(s) each\n", ti.Name, ti.NElems, ti.SElem)
	}
	for _, cd := range out.Checksums {
		fmt.Printf("  checksum: kernel %s folds %s into %s with %q, keyed by %v\n",
			cd.Kernel, cd.RHS, cd.Table, cd.Op, cd.Keys)
	}

	fmt.Println("\n== instrumented program ==")
	fmt.Println(out.Instrumented)

	fmt.Println("== generated check-and-recovery code (Listing 7) ==")
	fmt.Println(out.Recovery)
}
