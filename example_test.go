package gpulp_test

// Runnable godoc examples for the public API. Each compiles into the
// package documentation and runs under go test.

import (
	"fmt"

	"gpulp"
)

// ExampleFloatBits pins the paper's Fig. 2 conversion.
func ExampleFloatBits() {
	fmt.Println(gpulp.FloatBits(3.5))
	// Output: 1080033280
}

// Example_protectAndRecover shows the whole Lazy Persistency story:
// protect a kernel, crash, validate, recover.
func Example_protectAndRecover() {
	memCfg := gpulp.DefaultMemoryConfig()
	memCfg.CacheBytes = 64 << 10 // small cache so the crash loses data
	dev, mem := gpulp.NewSystem(gpulp.DefaultDeviceConfig(), memCfg)

	grid, block := gpulp.D1(64), gpulp.D1(128)
	out := dev.Alloc("out", grid.Size()*block.Size()*4)
	out.HostZero()

	lp := gpulp.NewLP(dev, gpulp.DefaultLPConfig(), grid, block)
	kernel := func(b *gpulp.Block) {
		r := lp.Begin(b)
		b.ForAll(func(t *gpulp.Thread) {
			v := uint32(t.GlobalLinear()) * 3
			t.StoreU32(out, t.GlobalLinear(), v)
			r.Update(t, v) // fold the persistent store into the checksum
		})
		r.Commit()
	}
	dev.Launch("work", grid, block, kernel)

	mem.Crash() // power failure: unevicted lines are gone

	recompute := func(b *gpulp.Block, r *gpulp.Region) {
		b.ForAll(func(t *gpulp.Thread) {
			r.Update(t, t.LoadU32(out, t.GlobalLinear()))
		})
	}
	if _, err := lp.ValidateAndRecover(kernel, recompute, 4); err != nil {
		fmt.Println("recovery failed:", err)
		return
	}
	fmt.Println("recovered:", out.PeekU32(100) == 300)
	// Output: recovered: true
}

// Example_translate runs the paper's directive syntax (§VI) through the
// source translator.
func Example_translate() {
	src := `__global__ void scale(float *out, float *in, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float v = in[i] * 2.0f;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = v;
}
`
	res, err := gpulp.Translate(src)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Checksums[0].Kernel, res.Checksums[0].Op, res.Checksums[0].RHS)
	// Output: scale + v
}
