// lpcheck is the crash-consistency model checker driver: it fuzzes the
// simulated persistency stack with seeded random scenarios and checks
// every run against an independent oracle of what must be durable.
//
// Usage:
//
//	lpcheck -seed 1 -n 500               # fixed-budget seeded run
//	lpcheck -ops 200000                  # deterministic op-budget soak
//	lpcheck -duration 10m                # time-boxed soak
//	lpcheck -model sbrp,strict -n 100    # scope the sweep to models
//	lpcheck -corpus internal/persistcheck/testdata/corpus
//	GPULP_PLANT_BUG=drop-writeback:1 lpcheck -n 50   # self-test: must fail
//
// Exit status is nonzero when any scenario violates the persistency
// contract; each failure is printed with its shrunk JSON reproducer,
// ready to be checked into the corpus.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"gpulp/internal/kernels"
	"gpulp/internal/persistcheck"
	"gpulp/internal/pmodel"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "generator seed (same seed => same scenarios and fingerprint)")
		n        = flag.Int("n", 200, "scenario budget (the kernel×backend coverage sweep always runs in full)")
		ops      = flag.Int64("ops", 0, "optional deterministic op budget; same (seed, n, ops) always runs the same scenarios")
		duration = flag.Duration("duration", 0, "optional wall-clock budget; stops random generation when elapsed")
		model    = flag.String("model", "", "comma-separated persistency models to sweep: lp (all four checksum stores), ep, sbrp, strict, or \"all\"")
		kernelsF = flag.String("kernels", "", "comma-separated workload subset (default: full Table I suite)")
		corpus   = flag.String("corpus", "", "replay every reproducer in this directory instead of fuzzing")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()

	c := persistcheck.NewChecker()

	if *corpus != "" {
		os.Exit(replayCorpus(c, *corpus))
	}

	cfg := persistcheck.Config{Seed: *seed, N: *n, MaxOps: *ops}
	if *duration > 0 {
		// The checker itself never reads the clock (its contract packages
		// are wall-clock-free); the CLI owns the deadline.
		deadline := time.Now().Add(*duration)
		cfg.Stop = func() bool { return time.Now().After(deadline) }
	}
	if *model != "" {
		specs, err := pmodel.Parse(*model)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpcheck: %v\n", err)
			os.Exit(2)
		}
		for _, s := range specs {
			if s.Name == "lp" {
				// LP is four design points: every checksum store backend.
				cfg.Backends = append(cfg.Backends,
					persistcheck.BackendQuad, persistcheck.BackendCuckoo,
					persistcheck.BackendChained, persistcheck.BackendGlobalArray)
				continue
			}
			cfg.Backends = append(cfg.Backends, s.Name)
		}
	}
	if *kernelsF != "" {
		cfg.Kernels = strings.Split(*kernelsF, ",")
		for _, k := range cfg.Kernels {
			if !knownKernel(k) {
				fmt.Fprintf(os.Stderr, "lpcheck: unknown kernel %q (known: %s)\n",
					k, strings.Join(kernels.Names, ", "))
				os.Exit(2)
			}
		}
	}
	if spec := os.Getenv("GPULP_PLANT_BUG"); spec != "" {
		drop, err := parsePlantBug(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpcheck: %v\n", err)
			os.Exit(2)
		}
		cfg.PlantDrop = drop
		fmt.Fprintf(os.Stderr, "lpcheck: planted bug armed: dropping write-back %d in every raw-memory scenario\n", drop)
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "lpcheck: "+format+"\n", args...)
		}
	}

	start := time.Now()
	rep := c.Run(cfg)
	elapsed := time.Since(start).Round(time.Millisecond)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "lpcheck: %v\n", err)
			os.Exit(2)
		}
	} else {
		printReport(rep, elapsed)
	}
	if !rep.Ok() {
		os.Exit(1)
	}
}

func printReport(rep *persistcheck.Report, elapsed time.Duration) {
	fmt.Printf("lpcheck: %d scenarios in %v (%d memops, %d kernel, %d diff, %d scrub), fingerprint %#x\n",
		rep.Scenarios, elapsed, rep.MemOps, rep.Kernel, rep.Diff, rep.Scrub, rep.Fingerprint)
	pairs := make([]string, 0, len(rep.Coverage))
	for k := range rep.Coverage {
		pairs = append(pairs, k)
	}
	sort.Strings(pairs)
	fmt.Printf("coverage: %d kernel/backend pairs\n", len(pairs))
	for _, k := range pairs {
		fmt.Printf("  %-28s %d\n", k, rep.Coverage[k])
	}
	if rep.Ok() {
		fmt.Println("PASS: no persistency contract violations")
		return
	}
	fmt.Printf("FAIL: %d violation(s)\n", len(rep.Failures))
	for i, f := range rep.Failures {
		fmt.Printf("--- failure %d: %s\n    %s\n", i+1, f.Scenario, f.Err)
		if data, err := json.MarshalIndent(f.Repro, "    ", "  "); err == nil {
			fmt.Printf("    shrunk reproducer:\n    %s\n", data)
		}
	}
}

func replayCorpus(c *persistcheck.Checker, dir string) int {
	names, repros, err := persistcheck.LoadCorpus(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lpcheck: %v\n", err)
		return 2
	}
	if len(repros) == 0 {
		fmt.Fprintf(os.Stderr, "lpcheck: no reproducers in %s\n", dir)
		return 2
	}
	failed := 0
	for i, r := range repros {
		if err := c.RunRepro(r); err != nil {
			failed++
			fmt.Printf("FAIL %s: %v\n", names[i], err)
		} else {
			fmt.Printf("ok   %s\n", names[i])
		}
	}
	fmt.Printf("lpcheck: corpus replay: %d/%d pass\n", len(repros)-failed, len(repros))
	if failed > 0 {
		return 1
	}
	return 0
}

func knownKernel(name string) bool {
	for _, n := range kernels.Names {
		if n == name {
			return true
		}
	}
	return false
}

// parsePlantBug parses GPULP_PLANT_BUG ("drop-writeback" or
// "drop-writeback:N", N 1-based).
func parsePlantBug(spec string) (int, error) {
	kind, arg, hasArg := strings.Cut(spec, ":")
	if kind != "drop-writeback" {
		return 0, fmt.Errorf("unknown GPULP_PLANT_BUG %q (supported: drop-writeback[:N])", spec)
	}
	if !hasArg {
		return 1, nil
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad GPULP_PLANT_BUG count %q: want a positive integer", arg)
	}
	return n, nil
}
