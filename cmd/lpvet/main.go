// lpvet is the multichecker for this repo's persistency, determinism,
// and fencing contracts. It type-checks the module offline (standard
// library via the go command's export-data cache, module packages from
// source) and runs five analyzers:
//
//	determinism     no wall clock, global rand, or unsorted map iteration
//	                in contract packages
//	errcompare      sentinel errors via errors.Is, typed errors via errors.As
//	fencepair       every memsim FenceRange released on all paths
//	persistbarrier  durable writes only through the Store/HostWrite barrier
//	seedplumb       rand seeds threaded, never constant or package-level
//
// Intentional violations carry //lpvet:allow <analyzer> <reason>; an
// allow without a reason, or one that suppresses nothing, is itself a
// finding. Exit status 1 on any finding, 2 on usage or load errors.
//
// Usage:
//
//	lpvet [packages]    # go list patterns; default ./...
package main

import (
	"flag"
	"fmt"
	"os"

	"gpulp/internal/analysis/lpvet"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lpvet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lpvet.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpvet:", err)
		os.Exit(2)
	}
	findings, err := lpvet.Vet(cwd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lpvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
