// Command crashdemo walks through the full Lazy Persistency story on one
// workload: run a kernel under LP on the simulated NVM-backed GPU, crash
// at an arbitrary point (dropping every cache line that was never
// naturally evicted), validate all regions against their checksums,
// re-execute only the failed thread blocks, and prove the recovered
// output equals the crash-free result.
//
//	crashdemo -workload tmm -cache 262144
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
)

func main() {
	var (
		name      = flag.String("workload", "tmm", "workload to run (tmm, spmv, histo, ...)")
		cache     = flag.Int("cache", 256<<10, "cache size in bytes (smaller = more natural eviction before the crash)")
		scale     = flag.Int("scale", 1, "input scale")
		tracePath = flag.String("trace", "", "write per-block launch traces as JSON lines to this file")
	)
	flag.Parse()

	memCfg := memsim.DefaultConfig()
	memCfg.CacheBytes = *cache
	mem := memsim.MustNew(memCfg)
	dev := gpusim.MustNew(gpusim.DefaultConfig(), mem)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashdemo:", err)
			os.Exit(1)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		dev.SetTraceSink(func(tr gpusim.LaunchTrace) {
			if err := enc.Encode(tr); err != nil {
				fmt.Fprintln(os.Stderr, "crashdemo: trace:", err)
			}
		})
		fmt.Printf("writing launch traces to %s\n", *tracePath)
	}

	w := kernels.New(*name, *scale)
	w.Setup(dev)
	grid, blk := w.Geometry()
	fmt.Printf("workload %s: %d blocks of %d threads, LP region = thread block\n",
		w.Name(), grid.Size(), blk.Size())

	lp := core.New(dev, core.DefaultConfig(), grid, blk)
	kernel := w.Kernel(lp)

	res := dev.Launch(w.Name(), grid, blk, kernel)
	fmt.Printf("ran kernel: %d simulated cycles (%.3f ms at %.2f GHz)\n",
		res.Cycles, dev.Config().CyclesToMS(res.Cycles), dev.Config().ClockGHz)
	fmt.Printf("dirty (unpersisted) cache lines before crash: %d\n", mem.DirtyLines())

	mem.Crash()
	fmt.Println("CRASH: cache dropped; durable state = naturally evicted lines only")

	failed, vres, verr := lp.Validate(w.Recompute())
	if verr != nil {
		fmt.Fprintln(os.Stderr, "crashdemo: validation failed:", verr)
		os.Exit(1)
	}
	fmt.Printf("validation: %d of %d regions failed checksum comparison (%d cycles)\n",
		len(failed), grid.Size(), vres.Cycles)

	rep, err := lp.ValidateAndRecover(kernel, w.Recompute(), 5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashdemo: recovery failed:", err)
		os.Exit(1)
	}
	fmt.Printf("%v\n", rep)

	if f, ok := w.(kernels.Finalizer); ok {
		fname, fg, fb, k := f.FinalizeKernel()
		dev.Launch(fname, fg, fb, k)
	}
	if err := w.Verify(); err != nil {
		fmt.Fprintln(os.Stderr, "crashdemo: output mismatch after recovery:", err)
		os.Exit(1)
	}
	fmt.Println("output verified: recovered state is identical to the crash-free golden result")
}
