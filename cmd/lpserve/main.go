// Command lpserve runs the MEGA-KV serving layer: seeded open/closed-
// loop load, admission control, batched kernel launches under a
// selectable persistency model, and a per-SLO-class latency report.
//
//	lpserve -model lp -policy token-bucket
//	lpserve -model ep -rate-scale 2 -json
//	lpserve -model sbrp -crash 5        # inject a mid-serving crash
//
// Reports are deterministic: the same flags produce byte-identical
// output at any -workers value and across reruns. See DESIGN.md §9 and
// EXPERIMENTS.md for the recorded sweeps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gpulp/internal/pmodel"
	"gpulp/internal/serve"
)

func main() {
	var (
		model     = flag.String("model", "lp", "persistency model: "+strings.Join(pmodel.Names(), ", ")+", or none (bare launches)")
		policy    = flag.String("policy", "token-bucket", "admission policy: "+strings.Join(serve.PolicyNames(), ", "))
		seed      = flag.Uint64("seed", 1, "seed for every random draw in the run")
		horizon   = flag.Int64("horizon", 0, "arrival horizon in cycles (0 = default config)")
		rateScale = flag.Float64("rate-scale", 1, "multiply every open-loop client's arrival rate")
		admitRate = flag.Float64("admit-rate", 0, "token-bucket sustained admits per Mcycle (0 = default)")
		burst     = flag.Int("admit-burst", 0, "token-bucket burst depth (0 = default)")
		batch     = flag.Int("batch", 0, "max requests per kernel launch (0 = default; must be a multiple of 128)")
		wait      = flag.Int64("wait", 0, "batching deadline in cycles (0 = default)")
		workers   = flag.Int("workers", 1, "host goroutines executing thread blocks speculatively (bit-identical at any value)")
		crash     = flag.Int("crash", 0, "crash the memory system during the Nth launch and recover (requires a persistency model)")
		baseline  = flag.Bool("baseline", true, "also run the bare (model none) config and report durability overhead")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		list      = flag.Bool("list", false, "list models and admission policies, then exit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lpserve: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *list {
		fmt.Println("persistency models:")
		fmt.Printf("  %-8s %s\n", "none", "no persistency: bare launches (the overhead baseline)")
		for _, s := range pmodel.Specs() {
			fmt.Printf("  %-8s %s\n", s.Name, s.Title)
		}
		fmt.Println("admission policies:")
		for _, p := range serve.Policies() {
			fmt.Printf("  %-13s %s\n", p.Name, p.Title)
		}
		return
	}

	cfg := serve.DefaultConfig()
	cfg.Model = strings.ToLower(strings.TrimSpace(*model))
	cfg.Policy = *policy
	cfg.Seed = *seed
	if *horizon > 0 {
		cfg.HorizonCycles = *horizon
	}
	if *rateScale != 1 {
		for i := range cfg.Clients {
			cfg.Clients[i].RatePerMCycle *= *rateScale
			if cfg.Clients[i].Closed {
				cfg.Clients[i].ThinkCycles /= *rateScale
			}
		}
	}
	if *admitRate > 0 {
		cfg.AdmitRatePerMCycle = *admitRate
	}
	if *burst > 0 {
		cfg.AdmitBurst = *burst
	}
	if *batch > 0 {
		cfg.MaxBatch = *batch
	}
	if *wait > 0 {
		cfg.MaxWaitCycles = *wait
	}
	cfg.Dev.Workers = *workers
	cfg.CrashAtLaunch = *crash

	res, err := serve.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpserve:", err)
		os.Exit(1)
	}
	if err := res.VerifyLedger(); err != nil {
		fmt.Fprintln(os.Stderr, "lpserve: durable store contradicts the admission ledger:", err)
		os.Exit(1)
	}
	if *baseline && cfg.Model != "none" && cfg.Model != "" {
		base := cfg
		base.Model = "none"
		base.CrashAtLaunch = 0
		if bres, berr := serve.Run(base); berr == nil {
			res.Report.CompareBaseline(bres.Report)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Report); err != nil {
			fmt.Fprintln(os.Stderr, "lpserve:", err)
			os.Exit(1)
		}
		return
	}
	res.Report.Render(os.Stdout)
}
