// Command lpserve runs the MEGA-KV serving layer: seeded open/closed-
// loop load, admission control, batched kernel launches under a
// selectable persistency model, and a per-SLO-class latency report.
//
//	lpserve -model lp -policy token-bucket
//	lpserve -model ep -rate-scale 2 -json
//	lpserve -model sbrp -crash 5        # inject a mid-serving crash
//
// With -devices N it serves from an N-device cluster instead: every
// batch launches on every alive device (each device's store is a full
// replica), -fail-launch kills one device mid-batch — survivors adopt
// the batch with zero recovery stall and the run continues degraded,
// shedding bulk-class arrivals before interactive ones — and a
// single-device failure recovers in place under a bounded
// retry/backoff budget.
//
//	lpserve -devices 3 -fail-launch 2 -fail-device 1
//	lpserve -devices 2 -fail-launch 1 -keep-classes 1 -json
//
// Reports are deterministic: the same flags produce byte-identical
// output at any -workers value and across reruns. See DESIGN.md §9-10
// and EXPERIMENTS.md for the recorded sweeps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gpulp/internal/pmodel"
	"gpulp/internal/serve"
)

// cliFlags carries every parsed flag value through validation, so the
// contradictory-combination checks are table-testable without a real
// command line.
type cliFlags struct {
	model, policy        string
	seed                 uint64
	horizon, wait        int64
	rateScale, admitRate float64
	burst, batch         int
	workers, crash       int
	baseline, list, json bool

	devices, failLaunch, failDevice int
	retries, keepClasses            int
	backoff                         int64
}

// bare reports whether the selected model means "no persistency".
func bare(model string) bool { return model == "" || model == "none" }

// validateFlags rejects contradictory or out-of-range flag combinations
// before any simulation spins up; set records which flags the user
// explicitly passed. Every error here exits with status 2 (usage), the
// same contract lpfault's validateFlags follows.
func validateFlags(set map[string]bool, f cliFlags) error {
	if f.list {
		for name := range set {
			if name != "list" {
				return fmt.Errorf("-list only lists models and policies and cannot combine with -%s", name)
			}
		}
		return nil
	}
	if f.rateScale <= 0 {
		return fmt.Errorf("-rate-scale %v must be positive", f.rateScale)
	}
	if f.horizon < 0 {
		return fmt.Errorf("-horizon %d must be non-negative", f.horizon)
	}
	if f.wait < 0 {
		return fmt.Errorf("-wait %d must be non-negative", f.wait)
	}
	if f.batch < 0 {
		return fmt.Errorf("-batch %d must be non-negative", f.batch)
	}
	if f.batch > 0 && f.batch%serve.BlockThreads != 0 {
		return fmt.Errorf("-batch %d must be a multiple of %d", f.batch, serve.BlockThreads)
	}
	if f.admitRate < 0 {
		return fmt.Errorf("-admit-rate %v must be non-negative", f.admitRate)
	}
	if f.burst < 0 {
		return fmt.Errorf("-admit-burst %d must be non-negative", f.burst)
	}
	if f.workers < 1 {
		return fmt.Errorf("-workers %d must be >= 1", f.workers)
	}
	if f.crash < 0 {
		return fmt.Errorf("-crash %d must be non-negative", f.crash)
	}
	if f.crash > 0 && bare(f.model) {
		return fmt.Errorf("-crash %d needs a persistency model to recover with, got -model %q", f.crash, f.model)
	}
	// The token-bucket knobs silently do nothing under other policies —
	// reject the combination instead of running a different experiment
	// than the one asked for.
	if f.policy != "token-bucket" {
		if set["admit-rate"] {
			return fmt.Errorf("-admit-rate only applies to -policy token-bucket, got %q", f.policy)
		}
		if set["admit-burst"] {
			return fmt.Errorf("-admit-burst only applies to -policy token-bucket, got %q", f.policy)
		}
	}

	// Cluster serving: -devices switches modes, and the cluster-only
	// knobs demand it.
	clusterOnly := []string{"fail-launch", "fail-device", "retries", "backoff", "keep-classes"}
	if !set["devices"] {
		for _, name := range clusterOnly {
			if set[name] {
				return fmt.Errorf("-%s only applies to cluster serving (-devices)", name)
			}
		}
		return nil
	}
	if f.devices < 1 {
		return fmt.Errorf("-devices %d must be >= 1", f.devices)
	}
	if set["crash"] {
		return fmt.Errorf("cluster serving injects failures via -fail-launch, not -crash")
	}
	if f.failLaunch < 0 {
		return fmt.Errorf("-fail-launch %d must be non-negative", f.failLaunch)
	}
	if f.failLaunch > 0 && bare(f.model) {
		return fmt.Errorf("-fail-launch %d needs a persistency model, got -model %q", f.failLaunch, f.model)
	}
	if set["fail-device"] && !set["fail-launch"] {
		return fmt.Errorf("-fail-device selects which device -fail-launch kills; set -fail-launch too")
	}
	if f.failDevice < 0 || (f.failLaunch > 0 && f.failDevice >= f.devices) {
		return fmt.Errorf("-fail-device %d out of range [0, %d)", f.failDevice, f.devices)
	}
	if f.retries < 0 || (f.failLaunch > 0 && f.retries == 0 && set["retries"]) {
		return fmt.Errorf("-retries %d must be positive when -fail-launch is set", f.retries)
	}
	if f.backoff < 0 {
		return fmt.Errorf("-backoff %d must be non-negative", f.backoff)
	}
	if set["keep-classes"] && f.keepClasses < 0 {
		return fmt.Errorf("-keep-classes %d must be non-negative", f.keepClasses)
	}
	return nil
}

func main() {
	var f cliFlags
	flag.StringVar(&f.model, "model", "lp", "persistency model: "+strings.Join(pmodel.Names(), ", ")+", or none (bare launches)")
	flag.StringVar(&f.policy, "policy", "token-bucket", "admission policy: "+strings.Join(serve.PolicyNames(), ", "))
	flag.Uint64Var(&f.seed, "seed", 1, "seed for every random draw in the run")
	flag.Int64Var(&f.horizon, "horizon", 0, "arrival horizon in cycles (0 = default config)")
	flag.Float64Var(&f.rateScale, "rate-scale", 1, "multiply every open-loop client's arrival rate")
	flag.Float64Var(&f.admitRate, "admit-rate", 0, "token-bucket sustained admits per Mcycle (0 = default)")
	flag.IntVar(&f.burst, "admit-burst", 0, "token-bucket burst depth (0 = default)")
	flag.IntVar(&f.batch, "batch", 0, "max requests per kernel launch (0 = default; must be a multiple of 128)")
	flag.Int64Var(&f.wait, "wait", 0, "batching deadline in cycles (0 = default)")
	flag.IntVar(&f.workers, "workers", 1, "host goroutines executing thread blocks speculatively (bit-identical at any value)")
	flag.IntVar(&f.crash, "crash", 0, "crash the memory system during the Nth launch and recover (requires a persistency model)")
	flag.BoolVar(&f.baseline, "baseline", true, "also run the bare (model none) config and report durability overhead")
	flag.BoolVar(&f.json, "json", false, "emit the report as JSON")
	flag.BoolVar(&f.list, "list", false, "list models and admission policies, then exit")
	flag.IntVar(&f.devices, "devices", 0, "serve from an N-device cluster (every batch launches on every alive device)")
	flag.IntVar(&f.failLaunch, "fail-launch", 0, "fail-stop one cluster device midway through the Nth launch")
	flag.IntVar(&f.failDevice, "fail-device", 0, "which cluster device -fail-launch kills")
	flag.IntVar(&f.retries, "retries", 0, "last-device recovery attempt budget (0 = default)")
	flag.Int64Var(&f.backoff, "backoff", 0, "base retry backoff in cycles, doubled per attempt (0 = default)")
	flag.IntVar(&f.keepClasses, "keep-classes", -1, "SLO classes (leading, most latency-sensitive) still admitted once degraded (-1 = default: interactive only)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lpserve: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	set := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
	if err := validateFlags(set, f); err != nil {
		fmt.Fprintln(os.Stderr, "lpserve:", err)
		flag.Usage()
		os.Exit(2)
	}

	if f.list {
		fmt.Println("persistency models:")
		fmt.Printf("  %-8s %s\n", "none", "no persistency: bare launches (the overhead baseline)")
		for _, s := range pmodel.Specs() {
			fmt.Printf("  %-8s %s\n", s.Name, s.Title)
		}
		fmt.Println("admission policies:")
		for _, p := range serve.Policies() {
			fmt.Printf("  %-13s %s\n", p.Name, p.Title)
		}
		return
	}

	cfg := serve.DefaultConfig()
	cfg.Model = strings.ToLower(strings.TrimSpace(f.model))
	cfg.Policy = f.policy
	cfg.Seed = f.seed
	if f.horizon > 0 {
		cfg.HorizonCycles = f.horizon
	}
	if f.rateScale != 1 {
		for i := range cfg.Clients {
			cfg.Clients[i].RatePerMCycle *= f.rateScale
			if cfg.Clients[i].Closed {
				cfg.Clients[i].ThinkCycles /= f.rateScale
			}
		}
	}
	if f.admitRate > 0 {
		cfg.AdmitRatePerMCycle = f.admitRate
	}
	if f.burst > 0 {
		cfg.AdmitBurst = f.burst
	}
	if f.batch > 0 {
		cfg.MaxBatch = f.batch
	}
	if f.wait > 0 {
		cfg.MaxWaitCycles = f.wait
	}
	cfg.Dev.Workers = f.workers

	if set["devices"] {
		runCluster(cfg, f)
		return
	}
	cfg.CrashAtLaunch = f.crash

	res, err := serve.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpserve:", err)
		os.Exit(1)
	}
	if err := res.VerifyLedger(); err != nil {
		fmt.Fprintln(os.Stderr, "lpserve: durable store contradicts the admission ledger:", err)
		os.Exit(1)
	}
	if f.baseline && !bare(cfg.Model) {
		base := cfg
		base.Model = "none"
		base.CrashAtLaunch = 0
		if bres, berr := serve.Run(base); berr == nil {
			res.Report.CompareBaseline(bres.Report)
		}
	}

	if f.json {
		emitJSON(res.Report)
		return
	}
	res.Report.Render(os.Stdout)
}

// runCluster executes the cluster-backed serving run.
func runCluster(cfg serve.Config, f cliFlags) {
	ccfg := serve.DefaultClusterConfig()
	ccfg.Config = cfg
	ccfg.Devices = f.devices
	ccfg.FailAtLaunch = f.failLaunch
	ccfg.FailDevice = f.failDevice
	if f.retries > 0 {
		ccfg.MaxRetries = f.retries
	}
	if f.backoff > 0 {
		ccfg.RetryBackoffCycles = f.backoff
	}
	if f.keepClasses >= 0 {
		ccfg.DegradedKeepClasses = f.keepClasses
	}

	res, err := serve.RunCluster(ccfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpserve:", err)
		os.Exit(1)
	}
	if err := res.VerifyLedger(); err != nil {
		fmt.Fprintln(os.Stderr, "lpserve: durable replicas contradict the admission ledger:", err)
		os.Exit(1)
	}
	if f.baseline && !bare(ccfg.Model) {
		base := ccfg
		base.Model = "none"
		base.FailAtLaunch = 0
		if bres, berr := serve.RunCluster(base); berr == nil {
			res.Report.CompareBaseline(&bres.Report.Report)
		}
	}

	if f.json {
		emitJSON(res.Report)
		return
	}
	fmt.Print(res.Report.String())
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "lpserve:", err)
		os.Exit(1)
	}
}
