package main

import (
	"strings"
	"testing"
)

// defaults mirrors the flag defaults main() registers, so each case
// only states what the user explicitly set.
func defaults() cliFlags {
	return cliFlags{
		model:       "lp",
		policy:      "token-bucket",
		seed:        1,
		rateScale:   1,
		workers:     1,
		baseline:    true,
		keepClasses: -1,
	}
}

// TestValidateFlags pins the contradictory-combination rejections: each
// case is (explicitly set flags, mutation) and either passes or fails
// with a message naming the offending flag.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		set     []string
		mut     func(*cliFlags)
		wantErr string
	}{
		{"defaults ok", nil, func(f *cliFlags) {}, ""},
		{"crash with model", []string{"crash"}, func(f *cliFlags) { f.crash = 3 }, ""},
		{"crash bare model", []string{"crash", "model"}, func(f *cliFlags) { f.crash = 3; f.model = "none" }, "-crash"},
		{"crash empty model", []string{"crash", "model"}, func(f *cliFlags) { f.crash = 1; f.model = "" }, "-crash"},
		{"negative crash", []string{"crash"}, func(f *cliFlags) { f.crash = -1 }, "-crash"},
		{"list alone", []string{"list"}, func(f *cliFlags) { f.list = true }, ""},
		{"list with baseline", []string{"list", "baseline"}, func(f *cliFlags) { f.list = true }, "-list"},
		{"list with json", []string{"list", "json"}, func(f *cliFlags) { f.list = true; f.json = true }, "-list"},
		{"admit-rate always-admit", []string{"admit-rate", "policy"},
			func(f *cliFlags) { f.policy = "always-admit"; f.admitRate = 50 }, "-admit-rate"},
		{"admit-burst always-admit", []string{"admit-burst", "policy"},
			func(f *cliFlags) { f.policy = "always-admit"; f.burst = 8 }, "-admit-burst"},
		{"admit knobs token-bucket", []string{"admit-rate", "admit-burst"},
			func(f *cliFlags) { f.admitRate = 50; f.burst = 8 }, ""},
		{"zero rate-scale", []string{"rate-scale"}, func(f *cliFlags) { f.rateScale = 0 }, "-rate-scale"},
		{"negative rate-scale", []string{"rate-scale"}, func(f *cliFlags) { f.rateScale = -2 }, "-rate-scale"},
		{"negative horizon", []string{"horizon"}, func(f *cliFlags) { f.horizon = -1 }, "-horizon"},
		{"negative wait", []string{"wait"}, func(f *cliFlags) { f.wait = -5 }, "-wait"},
		{"unaligned batch", []string{"batch"}, func(f *cliFlags) { f.batch = 100 }, "-batch"},
		{"zero workers", []string{"workers"}, func(f *cliFlags) { f.workers = 0 }, "-workers"},
		{"cluster ok", []string{"devices"}, func(f *cliFlags) { f.devices = 3 }, ""},
		{"cluster failure ok", []string{"devices", "fail-launch", "fail-device"},
			func(f *cliFlags) { f.devices = 3; f.failLaunch = 2; f.failDevice = 1 }, ""},
		{"zero devices", []string{"devices"}, func(f *cliFlags) { f.devices = 0 }, "-devices"},
		{"fail-launch without devices", []string{"fail-launch"}, func(f *cliFlags) { f.failLaunch = 1 }, "-fail-launch"},
		{"keep-classes without devices", []string{"keep-classes"}, func(f *cliFlags) { f.keepClasses = 2 }, "-keep-classes"},
		{"retries without devices", []string{"retries"}, func(f *cliFlags) { f.retries = 2 }, "-retries"},
		{"backoff without devices", []string{"backoff"}, func(f *cliFlags) { f.backoff = 100 }, "-backoff"},
		{"crash with devices", []string{"devices", "crash"},
			func(f *cliFlags) { f.devices = 2; f.crash = 1 }, "-fail-launch"},
		{"fail-launch bare model", []string{"devices", "fail-launch", "model"},
			func(f *cliFlags) { f.devices = 2; f.failLaunch = 1; f.model = "none" }, "-fail-launch"},
		{"fail-device without fail-launch", []string{"devices", "fail-device"},
			func(f *cliFlags) { f.devices = 2; f.failDevice = 1 }, "-fail-device"},
		{"fail-device out of range", []string{"devices", "fail-launch", "fail-device"},
			func(f *cliFlags) { f.devices = 2; f.failLaunch = 1; f.failDevice = 5 }, "-fail-device"},
		{"explicit zero retries", []string{"devices", "fail-launch", "retries"},
			func(f *cliFlags) { f.devices = 1; f.failLaunch = 1; f.retries = 0 }, "-retries"},
		{"negative backoff", []string{"devices", "backoff"},
			func(f *cliFlags) { f.devices = 2; f.backoff = -1 }, "-backoff"},
		{"negative keep-classes", []string{"devices", "keep-classes"},
			func(f *cliFlags) { f.devices = 2; f.keepClasses = -2 }, "-keep-classes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := defaults()
			tc.mut(&f)
			set := map[string]bool{}
			for _, name := range tc.set {
				set[name] = true
			}
			err := validateFlags(set, f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error naming %s, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name %s", err, tc.wantErr)
			}
		})
	}
}
