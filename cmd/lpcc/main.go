// Command lpcc is the reference implementation of the paper's
// directive-based programming support (§VI): it translates CUDA-style
// source annotated with
//
//	#pragma nvm lpcuda_init(table, nelems, selem)
//	#pragma nvm lpcuda_checksum(type, table, key1, ...)
//
// into (a) instrumented code with Lazy Persistency runtime calls and
// (b) the generated check-and-recovery kernels (Listing 7).
//
//	lpcc -in kernel.cu -out kernel_lp.cu -recovery kernel_cr.cu
//
// With no flags it reads stdin and writes the instrumented program to
// stdout followed by the recovery code.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpulp/internal/directive"
)

func main() {
	var (
		in       = flag.String("in", "", "input file (default stdin)")
		out      = flag.String("out", "", "instrumented output file (default stdout)")
		recovery = flag.String("recovery", "", "check-and-recovery output file (default appended to stdout)")
		describe = flag.Bool("describe", false, "print the parsed directives instead of code")
	)
	flag.Parse()

	src, err := readInput(*in)
	if err != nil {
		fail(err)
	}
	res, err := directive.Translate(string(src))
	if err != nil {
		fail(err)
	}

	if *describe {
		for _, ti := range res.Tables {
			fmt.Printf("line %d: checksum table %s, %s elements x %s checksums\n",
				ti.Line, ti.Name, ti.NElems, ti.SElem)
		}
		for _, cd := range res.Checksums {
			fmt.Printf("line %d: kernel %s: fold %q into %s (op %q, keys %v) for store to %s\n",
				cd.Line, cd.Kernel, cd.RHS, cd.Table, cd.Op, cd.Keys, cd.LHS)
		}
		return
	}

	if err := writeOutput(*out, res.Instrumented); err != nil {
		fail(err)
	}
	if *recovery != "" {
		if err := writeOutput(*recovery, res.Recovery); err != nil {
			fail(err)
		}
		return
	}
	if *out == "" && res.Recovery != "" {
		fmt.Println("\n// ---- generated check-and-recovery code ----")
		fmt.Print(res.Recovery)
	}
}

func readInput(path string) ([]byte, error) {
	if path == "" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func writeOutput(path, content string) error {
	if path == "" {
		_, err := fmt.Print(content)
		return err
	}
	return os.WriteFile(path, []byte(content), 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lpcc:", err)
	os.Exit(1)
}
