// Command lpbench regenerates the paper's evaluation artifacts (tables
// and figures) on the simulated GPU. Run with no flags to reproduce
// everything, or select experiments:
//
//	lpbench -exp fig5,table3 -scale 2 -verify
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpulp/internal/harness"
	"gpulp/internal/pmodel"
)

func main() {
	var (
		expList  = flag.String("exp", "all", "comma-separated experiment ids, or 'all' (ids: "+ids()+")")
		scale    = flag.Int("scale", 1, "workload input scale factor")
		verify   = flag.Bool("verify", false, "verify every run's output against the host golden reference")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		format   = flag.String("format", "text", "output format: text or markdown")
		parallel = flag.Int("parallel", 1, "host goroutines fanning out independent experiment runs (results are bit-identical at any value)")
		workers  = flag.Int("workers", 1, "host goroutines per simulated device executing thread blocks speculatively (results are bit-identical at any value)")
		model    = flag.String("model", "", "persistency models for the modelcompare sweep: comma-separated from "+strings.Join(pmodel.Names(), ",")+", or \"all\" (default)")
	)
	flag.Parse()

	render := (*harness.Table).Render
	switch *format {
	case "text":
	case "markdown":
		render = (*harness.Table).RenderMarkdown
	default:
		fmt.Fprintf(os.Stderr, "lpbench: unknown format %q (want text or markdown)\n", *format)
		os.Exit(1)
	}

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := harness.DefaultOptions()
	opt.Scale = *scale
	opt.Verify = *verify
	opt.Parallel = *parallel
	opt.Dev.Workers = *workers
	if *model != "" {
		specs, err := pmodel.Parse(*model)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			os.Exit(1)
		}
		for _, s := range specs {
			opt.Models = append(opt.Models, s.Name)
		}
	}
	r := harness.NewRunner(opt)

	if *expList == "all" {
		if err := r.RunAll(os.Stdout, render); err != nil {
			fmt.Fprintln(os.Stderr, "lpbench:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range strings.Split(*expList, ",") {
		id = strings.TrimSpace(id)
		e, ok := harness.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "lpbench: unknown experiment %q (known: %s)\n", id, ids())
			os.Exit(1)
		}
		tbl, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		render(tbl, os.Stdout)
	}
}

func ids() string {
	var out []string
	for _, e := range harness.Experiments {
		out = append(out, e.ID)
	}
	return strings.Join(out, ",")
}
