// Command lpfault runs a seeded fault-injection campaign against the
// Lazy Persistency runtime: for every (kernel, fault-kind, seed) case it
// runs the workload under LP, injects the fault (mid-kernel crash,
// partial eviction, torn write-backs, or NVM bit flips), recovers with
// graceful-degradation escalation, and requires the durable image to be
// bit-exact against a fault-free golden run — or an honest typed error.
// Any mismatch or panic fails the campaign (non-zero exit) and is
// minimized to its smallest reproducing case.
//
// With -ratesweep it instead arms memsim's online media-error process at
// a swept per-write fault rate and drives the self-healing recovery
// orchestrator (ECC scrub, retrying quarantine, kernel watchdog),
// reporting per-rate recovery success, scrub heal rate, quarantined bytes
// and the degraded-coverage curve.
//
// With -cluster it runs the multi-device failover campaign: N simulated
// devices under one shared clock, a seeded injector killing one device
// mid-launch (fail-stop, hang, or transient stall) in every case, and
// cross-device failover required to recover the shared durable image
// bit-exactly on the survivors — or degrade honestly to the typed
// cluster error.
//
// With -serve it runs the mid-serving crash campaign: full MEGA-KV
// serving runs (seeded load, admission, batched launches) under each
// selected persistency model, with the memory system crashed mid-way
// through a seed-derived kernel launch; the in-loop recovery must leave
// the durable store bit-exact against a crash-free run observed at the
// same launch, and the admission ledger must hold to the end.
//
// With -replicas it runs the replicated-failover campaign: a fixed-size
// cluster keeping R durable copies of every shard, a seeded injector
// killing one device mid-launch in every case, and the quorum harvest
// required to absorb every R >= 2 failure by adopting a consistent
// surviving replica — zero re-executed blocks — while R = 1 cases must
// degrade to the legacy re-execute path byte-identically. The sweep
// covers R × failure kind × placer × persistency model with a bit-exact
// durable-pool audit on every case.
//
//	lpfault -seeds 12                      # 204-case default campaign
//	lpfault -kernels tmm -kinds mid-kernel # one cell of the sweep
//	lpfault -model all -seeds 4            # every persistency model, same faults
//	lpfault -repro '{"kernel":"tmm","kind":"mid-kernel","seed":12345}'
//	lpfault -ratesweep -json               # media-error rate sweep
//	lpfault -ratesweep -rates 0.01,0.1 -stuckfrac 0.2 -locks
//	lpfault -cluster -devices 2,3 -seeds 4 # multi-device failover sweep
//	lpfault -cluster -failures hang -routers least-loaded -json
//	lpfault -serve -seeds 4                # mid-serving crash campaign
//	lpfault -serve -model lp,strict -json
//	lpfault -replicas -rfactors 1,2,3      # replicated failover sweep
//	lpfault -replicas -placers affinity -model lp,sbrp -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gpulp/internal/cluster"
	"gpulp/internal/faultsim"
	"gpulp/internal/pmodel"
)

func main() {
	var (
		kernels   = flag.String("kernels", "tmm,spmv,megakv-insert", "comma-separated workloads to stress")
		kinds     = flag.String("kinds", "", "comma-separated fault kinds (default: all of "+kindNames()+")")
		seeds     = flag.Int("seeds", 12, "seeded cases per campaign cell")
		baseSeed  = flag.Uint64("seed", 0x1a2b3c4d, "campaign base seed")
		scale     = flag.Int("scale", 1, "workload input scale")
		cache     = flag.Int("cache", 256<<10, "cache size in bytes")
		maxRounds = flag.Int("maxrounds", 3, "selective-recovery round bound before escalation")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON instead of a table")
		minimize  = flag.Bool("minimize", true, "shrink failing cases to their smallest reproduction")
		progress  = flag.Bool("progress", false, "print each case as it completes")
		parallel  = flag.Int("parallel", 1, "host goroutines running campaign cases concurrently (the report is bit-identical at any value)")
		model     = flag.String("model", "", "persistency models to campaign over: comma-separated from "+strings.Join(pmodel.Names(), ",")+", or \"all\" (default: lp only)")
		repro     = flag.String("repro", "", "re-run a single case from its reported JSON instead of a campaign")

		rateSweep = flag.Bool("ratesweep", false, "run the media-error rate sweep (self-healing recovery) instead of the crash-shape campaign")
		rates     = flag.String("rates", "0.002,0.01,0.05,0.2", "comma-separated per-write transient fault rates to sweep")
		stuckFrac = flag.Float64("stuckfrac", 0.1, "fraction of each rate that is permanent stuck-at faults")
		locks     = flag.Bool("locks", false, "guard each block behind a spin lock so stuck lock cells exercise the kernel watchdog")
		watchdog  = flag.Int64("watchdog", 2_000_000, "kernel watchdog step budget for the rate sweep (0 disables)")
		attempts  = flag.Int("attempts", 4, "self-heal attempts per rate-sweep case")

		serveMode = flag.Bool("serve", false, "run the mid-serving crash campaign against the MEGA-KV serving layer instead of the crash-shape campaign")

		clusterMode = flag.Bool("cluster", false, "run the multi-device failover campaign instead of the crash-shape campaign")
		devices     = flag.String("devices", "2,3", "comma-separated cluster sizes to sweep")
		routers     = flag.String("routers", "", "comma-separated dispatch routers (default: all of "+routerNames()+")")
		failures    = flag.String("failures", "", "comma-separated device-failure kinds (default: all of "+failureNames()+")")
		jobs        = flag.Int("jobs", 8, "kernel launches (shards) per cluster case")
		minAlive    = flag.Int("minalive", 1, "cluster quorum: below this many non-dead devices the run degrades")

		replicaMode = flag.Bool("replicas", false, "run the replicated-failover campaign instead of the crash-shape campaign")
		rfactors    = flag.String("rfactors", "1,2", "comma-separated replication factors to sweep")
		placers     = flag.String("placers", "", "comma-separated replica placers (default: all of "+placerNames()+")")
		rdevices    = flag.Int("rdevices", 4, "fixed cluster size for the replicated-failover campaign")
	)
	flag.Parse()

	if err := validateFlags(*seeds, *scale, *cache, *parallel, *attempts, *stuckFrac,
		*kernels, *repro, *rateSweep, *clusterMode, *serveMode, *replicaMode,
		*jobs, *minAlive, *rdevices); err != nil {
		fmt.Fprintln(os.Stderr, "lpfault:", err)
		flag.Usage()
		os.Exit(2)
	}

	opt := faultsim.DefaultOptions()
	opt.Scale = *scale
	opt.Mem.CacheBytes = *cache
	opt.MaxRounds = *maxRounds

	if *repro != "" {
		reproduce(opt, *repro, *jsonOut)
		return
	}
	if *rateSweep {
		runRateSweep(opt, *rates, *stuckFrac, *locks, *watchdog, *attempts,
			*seeds, *baseSeed, *parallel, *progress, *jsonOut)
		return
	}
	if *clusterMode {
		runCluster(opt, *devices, *routers, *failures, *jobs, *minAlive,
			*seeds, *baseSeed, *parallel, *progress, *jsonOut)
		return
	}
	if *serveMode {
		runServe(*model, *seeds, *baseSeed, *parallel, *progress, *jsonOut)
		return
	}
	if *replicaMode {
		runReplicas(opt, *rfactors, *placers, *failures, *model, *rdevices, *jobs, *minAlive,
			*seeds, *baseSeed, *parallel, *progress, *jsonOut)
		return
	}

	c := &faultsim.Campaign{
		Opt:      opt,
		Kernels:  splitList(*kernels),
		Seeds:    *seeds,
		BaseSeed: *baseSeed,
		Minimize: *minimize,
		Parallel: *parallel,
	}
	if *model != "" {
		specs, err := pmodel.Parse(*model)
		if err != nil {
			fatal(err)
		}
		for _, s := range specs {
			c.Models = append(c.Models, s.Name)
		}
	}
	for _, s := range splitList(*kinds) {
		k, err := faultsim.ParseKind(s)
		if err != nil {
			fatal(err)
		}
		c.Kinds = append(c.Kinds, k)
	}
	if *progress {
		c.Progress = func(done, total int, r faultsim.Result) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %v -> %v\n", done, total, r.Case, r.Outcome)
		}
	}

	rep, err := c.Run()
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		rep.Render(os.Stdout)
	}
	if rep.Failed() {
		os.Exit(1)
	}
}

// validateFlags rejects contradictory or empty flag combinations with a
// usage error before any campaign machinery spins up: a campaign with
// zero cases, a negative budget, a mode-specific flag without its mode,
// or two exclusive modes at once would otherwise run silently and report
// a meaningless success.
func validateFlags(seeds, scale, cache, parallel, attempts int, stuckFrac float64,
	kernels, repro string, rateSweep, clusterMode, serveMode, replicaMode bool,
	jobs, minAlive, rdevices int) error {
	// Which flags were explicitly set on the command line.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if seeds <= 0 {
		return fmt.Errorf("-seeds %d would run an empty campaign (need >= 1)", seeds)
	}
	if scale < 1 {
		return fmt.Errorf("-scale %d must be >= 1", scale)
	}
	if cache <= 0 {
		return fmt.Errorf("-cache %d must be positive", cache)
	}
	if parallel < 1 {
		return fmt.Errorf("-parallel %d must be >= 1", parallel)
	}
	if attempts < 0 {
		return fmt.Errorf("-attempts %d must not be negative", attempts)
	}
	if stuckFrac < 0 || stuckFrac > 1 {
		return fmt.Errorf("-stuckfrac %v must be in [0,1]", stuckFrac)
	}

	modes := 0
	for _, m := range []bool{rateSweep, clusterMode, serveMode, replicaMode} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-ratesweep, -cluster, -serve and -replicas are exclusive modes")
	}
	if repro != "" && modes > 0 {
		return fmt.Errorf("-repro replays one crash-shape case and cannot combine with -ratesweep, -cluster, -serve or -replicas")
	}

	// Mode-specific flags demand their mode: silently ignoring them would
	// run a different campaign than the one asked for.
	rateOnly := []string{"rates", "stuckfrac", "locks", "watchdog", "attempts"}
	if !rateSweep {
		for _, name := range rateOnly {
			if set[name] {
				return fmt.Errorf("-%s only applies to -ratesweep", name)
			}
		}
	}
	clusterOnly := []string{"devices", "routers"}
	if !clusterMode {
		for _, name := range clusterOnly {
			if set[name] {
				return fmt.Errorf("-%s only applies to -cluster", name)
			}
		}
	}
	// Failure kinds, job counts and quorum parameterize both multi-device
	// campaigns.
	multiDevice := []string{"failures", "jobs", "minalive"}
	if !clusterMode && !replicaMode {
		for _, name := range multiDevice {
			if set[name] {
				return fmt.Errorf("-%s only applies to -cluster or -replicas", name)
			}
		}
	}
	replicaOnly := []string{"rfactors", "placers", "rdevices"}
	if !replicaMode {
		for _, name := range replicaOnly {
			if set[name] {
				return fmt.Errorf("-%s only applies to -replicas", name)
			}
		}
	}
	crashOnly := []string{"kernels", "kinds", "minimize", "maxrounds"}
	if modes > 0 {
		for _, name := range crashOnly {
			if set[name] {
				return fmt.Errorf("-%s only applies to the crash-shape campaign", name)
			}
		}
	}
	// -model selects persistency models for the crash-shape, serve and
	// replica campaigns, but is meaningless for the other modes.
	if set["model"] && (rateSweep || clusterMode) {
		return fmt.Errorf("-model only applies to the crash-shape, -serve and -replicas campaigns")
	}

	if modes == 0 && len(splitList(kernels)) == 0 {
		return fmt.Errorf("-kernels is empty: the crash-shape campaign needs at least one workload")
	}
	if clusterMode || replicaMode {
		if jobs < 1 {
			return fmt.Errorf("-jobs %d must be >= 1", jobs)
		}
		if minAlive < 1 {
			return fmt.Errorf("-minalive %d must be >= 1", minAlive)
		}
	}
	if replicaMode && rdevices < 1 {
		return fmt.Errorf("-rdevices %d must be >= 1", rdevices)
	}
	return nil
}

// reproduce replays one case from its JSON form (as reported in a
// campaign's failures) on a freshly computed golden image.
func reproduce(opt faultsim.Options, caseJSON string, jsonOut bool) {
	var c faultsim.Case
	if err := json.Unmarshal([]byte(caseJSON), &c); err != nil {
		fatal(fmt.Errorf("bad -repro case: %w", err))
	}
	golden, err := faultsim.GoldenRun(opt, c.Kernel)
	if err != nil {
		fatal(err)
	}
	res := faultsim.RunCase(opt, c, golden)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		tier := res.Tier.String()
		if res.ModelTier != "" {
			tier = res.ModelTier
		}
		fmt.Printf("%v -> %v (tier %v, %d rounds, %d cycles)\n",
			res.Case, res.Outcome, tier, res.Rounds, res.Cycles)
		if res.Err != "" {
			fmt.Println("  ", res.Err)
		}
	}
	if res.Outcome.Failed() {
		os.Exit(1)
	}
}

// runRateSweep executes the media-error rate sweep and renders or
// JSON-encodes its report; any contract violation exits non-zero.
func runRateSweep(opt faultsim.Options, rateList string, stuckFrac float64, locks bool,
	watchdog int64, attempts, seeds int, baseSeed uint64, parallel int, progress, jsonOut bool) {
	s := faultsim.DefaultRateSweep(seeds)
	s.Opt = opt
	s.StuckFrac = stuckFrac
	s.Locks = locks
	s.WatchdogSteps = watchdog
	s.MaxAttempts = attempts
	s.BaseSeed = baseSeed
	s.Parallel = parallel
	s.Rates = nil
	for _, p := range splitList(rateList) {
		var r float64
		if _, err := fmt.Sscanf(p, "%g", &r); err != nil {
			fatal(fmt.Errorf("bad -rates entry %q: %w", p, err))
		}
		s.Rates = append(s.Rates, r)
	}
	if progress {
		s.Progress = func(done, total int, r faultsim.RateResult) {
			fmt.Fprintf(os.Stderr, "[%d/%d] rate=%v seed=%#x -> %v\n", done, total, r.Rate, r.Seed, r.Outcome)
		}
	}
	rep, err := s.Run()
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		rep.Render(os.Stdout)
	}
	if rep.Failed() {
		os.Exit(1)
	}
}

// runCluster executes the multi-device failover campaign and renders or
// JSON-encodes its report; any contract violation exits non-zero.
func runCluster(opt faultsim.Options, deviceList, routerList, failureList string,
	jobs, minAlive, seeds int, baseSeed uint64, parallel int, progress, jsonOut bool) {
	c := faultsim.DefaultClusterCampaign(seeds)
	c.Opt = opt
	c.BaseSeed = baseSeed
	c.Jobs = jobs
	c.MinAlive = minAlive
	c.Parallel = parallel
	for _, p := range splitList(deviceList) {
		var d int
		if _, err := fmt.Sscanf(p, "%d", &d); err != nil {
			fatal(fmt.Errorf("bad -devices entry %q: %w", p, err))
		}
		c.DeviceCounts = append(c.DeviceCounts, d)
	}
	for _, s := range splitList(routerList) {
		r, err := cluster.ParseRouterKind(s)
		if err != nil {
			fatal(err)
		}
		c.Routers = append(c.Routers, r)
	}
	for _, s := range splitList(failureList) {
		k, err := cluster.ParseFailureKind(s)
		if err != nil {
			fatal(err)
		}
		c.Kinds = append(c.Kinds, k)
	}
	if progress {
		c.Progress = func(done, total int, r faultsim.ClusterResult) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %v -> %v\n", done, total, r.Case, r.Outcome)
		}
	}
	rep, err := c.Run()
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		rep.Render(os.Stdout)
	}
	if rep.Failed() {
		os.Exit(1)
	}
}

// runReplicas executes the replicated-failover campaign and renders or
// JSON-encodes its report; any contract violation exits non-zero.
func runReplicas(opt faultsim.Options, rfactorList, placerList, failureList, models string,
	rdevices, jobs, minAlive, seeds int, baseSeed uint64, parallel int, progress, jsonOut bool) {
	c := faultsim.DefaultReplicaCampaign(seeds)
	c.Opt = opt
	c.BaseSeed = baseSeed
	c.Devices = rdevices
	c.Jobs = jobs
	c.MinAlive = minAlive
	c.Parallel = parallel
	for _, p := range splitList(rfactorList) {
		var r int
		if _, err := fmt.Sscanf(p, "%d", &r); err != nil {
			fatal(fmt.Errorf("bad -rfactors entry %q: %w", p, err))
		}
		c.RFactors = append(c.RFactors, r)
	}
	for _, s := range splitList(placerList) {
		pk, err := cluster.ParsePlacerKind(s)
		if err != nil {
			fatal(err)
		}
		c.Placers = append(c.Placers, pk)
	}
	for _, s := range splitList(failureList) {
		k, err := cluster.ParseFailureKind(s)
		if err != nil {
			fatal(err)
		}
		c.Kinds = append(c.Kinds, k)
	}
	if models != "" {
		specs, err := pmodel.Parse(models)
		if err != nil {
			fatal(err)
		}
		c.Models = nil
		for _, s := range specs {
			c.Models = append(c.Models, s.Name)
		}
	}
	if progress {
		c.Progress = func(done, total int, r faultsim.ReplicaResult) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %v -> %v\n", done, total, r.Case, r.Outcome)
		}
	}
	rep, err := c.Run()
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		rep.Render(os.Stdout)
	}
	if rep.Failed() {
		os.Exit(1)
	}
}

// runServe executes the mid-serving crash campaign and renders or
// JSON-encodes its report; any contract violation exits non-zero.
func runServe(models string, seeds int, baseSeed uint64, parallel int, progress, jsonOut bool) {
	c := faultsim.DefaultServeCampaign(seeds)
	c.BaseSeed = baseSeed
	c.Parallel = parallel
	if models != "" {
		specs, err := pmodel.Parse(models)
		if err != nil {
			fatal(err)
		}
		c.Models = nil
		for _, s := range specs {
			c.Models = append(c.Models, s.Name)
		}
	}
	if progress {
		c.Progress = func(done, total int, r faultsim.ServeResult) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %v -> %v\n", done, total, r.Case, r.Outcome)
		}
	}
	rep, err := c.Run()
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		rep.Render(os.Stdout)
	}
	if rep.Failed() {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func kindNames() string {
	names := make([]string, 0)
	for _, k := range faultsim.AllKinds() {
		names = append(names, k.String())
	}
	return strings.Join(names, ",")
}

func routerNames() string {
	names := make([]string, 0)
	for _, r := range cluster.AllRouters() {
		names = append(names, r.String())
	}
	return strings.Join(names, ",")
}

func placerNames() string {
	names := make([]string, 0)
	for _, p := range cluster.AllPlacers() {
		names = append(names, p.String())
	}
	return strings.Join(names, ",")
}

func failureNames() string {
	names := make([]string, 0)
	for _, k := range cluster.AllFailureKinds() {
		names = append(names, k.String())
	}
	return strings.Join(names, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lpfault:", err)
	os.Exit(1)
}
