package gpulp_test

// Determinism pin for the MEGA-KV serving layer: a full serving run —
// seeded load generation, admission, batching, kernel launches, epoch
// drains, latency accounting — must produce a byte-identical report and
// byte-identical durable output images between the serial engine
// (Workers=1) and the parallel engine (Workers=detWorkers), for every
// registered persistency model and the bare baseline, and a host-
// parallel sweep of seeds must match a serial sweep run for run. This is
// the contract that lets the serve harness experiment and the lpfault
// serve campaign fan out without perturbing a single number.

import (
	"bytes"
	"testing"

	"gpulp/internal/pmodel"
	"gpulp/internal/serve"
)

func runServing(t *testing.T, model string, seed uint64, workers int) *serve.RunResult {
	t.Helper()
	cfg := serve.DefaultConfig()
	cfg.HorizonCycles = 400_000
	cfg.Model = model
	cfg.Seed = seed
	cfg.Dev.Workers = workers
	r, err := serve.Run(cfg)
	if err != nil {
		t.Fatalf("serve %s seed=%d workers=%d: %v", model, seed, workers, err)
	}
	if err := r.VerifyLedger(); err != nil {
		t.Fatalf("serve %s seed=%d workers=%d: %v", model, seed, workers, err)
	}
	return r
}

// TestServeDeterminism runs the serving loop under every registered
// persistency model plus the bare baseline with both engines and asserts
// byte-identical rendered reports and durable output images.
func TestServeDeterminism(t *testing.T) {
	models := append([]string{"none"}, pmodel.Names()...)
	for _, model := range models {
		model := model
		t.Run(model, func(t *testing.T) {
			serial := runServing(t, model, 1, 1)
			parallel := runServing(t, model, 1, detWorkers)
			if serial.Report.String() != parallel.Report.String() {
				t.Errorf("report diverged\nserial:\n%s\nparallel:\n%s",
					serial.Report.String(), parallel.Report.String())
			}
			so, po := serial.Outputs(), parallel.Outputs()
			if len(so) == 0 || len(so) != len(po) {
				t.Fatalf("output image count diverged: %d vs %d", len(so), len(po))
			}
			for i := range so {
				if !bytes.Equal(so[i], po[i]) {
					t.Errorf("durable output %d diverged between engines", i)
				}
			}
		})
	}
}

// TestServeDeterminismHostParallel sweeps seeds with a host-parallel
// goroutine fan-out and demands every run match its serial twin — the
// serving loop must not share state across concurrent runs.
func TestServeDeterminismHostParallel(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	serial := make([]string, len(seeds))
	for i, s := range seeds {
		serial[i] = runServing(t, "lp", s, 1).Report.String()
	}
	parallel := make([]string, len(seeds))
	done := make(chan int, len(seeds))
	for i, s := range seeds {
		go func(i int, s uint64) {
			parallel[i] = runServing(t, "lp", s, detWorkers).Report.String()
			done <- i
		}(i, s)
	}
	for range seeds {
		<-done
	}
	for i := range seeds {
		if serial[i] != parallel[i] {
			t.Errorf("seed %d: host-parallel sweep diverged from serial run", seeds[i])
		}
	}
}

func runClusterServing(t *testing.T, workers int) *serve.ClusterRunResult {
	t.Helper()
	cfg := serve.DefaultClusterConfig()
	cfg.HorizonCycles = 400_000
	cfg.Devices = 3
	cfg.Model = "lp"
	cfg.Seed = 7
	cfg.FailAtLaunch = 2
	cfg.FailDevice = 1
	cfg.Dev.Workers = workers
	r, err := serve.RunCluster(cfg)
	if err != nil {
		t.Fatalf("cluster serve workers=%d: %v", workers, err)
	}
	if err := r.VerifyLedger(); err != nil {
		t.Fatalf("cluster serve workers=%d: %v", workers, err)
	}
	if len(r.Report.DeadDevices) != 1 || r.Report.DeadDevices[0] != 1 {
		t.Fatalf("cluster serve workers=%d: expected device 1 dead, got %v",
			workers, r.Report.DeadDevices)
	}
	return r
}

// TestServeClusterDeterminism runs cluster-backed serving through a
// mid-serving device loss — replicated batch launches, survivor
// adoption, degraded-mode shedding — under both engine widths and
// asserts byte-identical rendered reports and durable output images.
func TestServeClusterDeterminism(t *testing.T) {
	serial := runClusterServing(t, 1)
	parallel := runClusterServing(t, detWorkers)
	if serial.Report.String() != parallel.Report.String() {
		t.Errorf("cluster report diverged\nserial:\n%s\nparallel:\n%s",
			serial.Report.String(), parallel.Report.String())
	}
	so, po := serial.Outputs(), parallel.Outputs()
	if len(so) == 0 || len(so) != len(po) {
		t.Fatalf("output image count diverged: %d vs %d", len(so), len(po))
	}
	for i := range so {
		if !bytes.Equal(so[i], po[i]) {
			t.Errorf("durable output %d diverged between engines", i)
		}
	}
}
