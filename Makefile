GO ?= go

.PHONY: all vet build test race race-parallel matrix smoke campaign bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-parallel: focused -race coverage of the host-parallel execution
# paths — the speculative block engine (gpusim), the root determinism
# suite's store/recovery slices, and the harness/campaign fan-out.
race-parallel:
	$(GO) test -race -run 'TestParallel' ./internal/gpusim/
	$(GO) test -race -short -run 'TestParallelDeterminismStores|TestParallelDeterminismRecovery' .
	$(GO) test -race -run 'TestCampaignParallel|TestScalingParallel' ./internal/faultsim/ ./internal/harness/

# matrix: the parallel determinism suite at two host scheduler widths;
# GOMAXPROCS must never change a reported number. -count=1 defeats the
# test cache, which does not key on GOMAXPROCS (the runtime reads it,
# not the test).
matrix:
	GOMAXPROCS=1 $(GO) test -short -count=1 -run 'TestParallelDeterminism' .
	GOMAXPROCS=4 $(GO) test -short -count=1 -run 'TestParallelDeterminism' .

# smoke: a quick seeded fault-injection sweep (every kernel × fault kind,
# 8 seeds each). Exits non-zero on any panic or silent mismatch.
smoke:
	$(GO) run ./cmd/lpfault -seeds 8

# campaign: the full 204-case robustness campaign from EXPERIMENTS.md.
campaign:
	$(GO) run ./cmd/lpfault -seeds 12

# bench: regenerate every artifact benchmark, then record the
# serial-vs-parallel wall-clock comparison to BENCH_parallel.json.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
	BENCH_JSON=BENCH_parallel.json $(GO) test -run '^TestWriteBenchParallelJSON$$' -v .

ci: vet build race race-parallel matrix smoke
