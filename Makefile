GO ?= go

.PHONY: all vet build test race smoke campaign bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke: a quick seeded fault-injection sweep (every kernel × fault kind,
# 8 seeds each). Exits non-zero on any panic or silent mismatch.
smoke:
	$(GO) run ./cmd/lpfault -seeds 8

# campaign: the full 204-case robustness campaign from EXPERIMENTS.md.
campaign:
	$(GO) run ./cmd/lpfault -seeds 12

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

ci: vet build race smoke
