GO ?= go

.PHONY: all vet lpvet build test tier1 race race-parallel matrix smoke campaign scrub-smoke scrub-campaign cluster-smoke cluster-soak persistcheck-smoke persistcheck-soak model-smoke model-soak serve-smoke serve-soak replica-smoke replica-soak bench ci

all: ci

# vet: go vet plus lpvet, the repo's own static-contract suite
# (determinism, fencepair, persistbarrier, errcompare, seedplumb —
# see DESIGN.md §7). Both must be clean.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/lpvet ./...

# lpvet: just the static-contract suite, with per-analyzer docs via
# `go run ./cmd/lpvet -list`.
lpvet:
	$(GO) run ./cmd/lpvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# tier1: the baseline gate every change must keep green.
tier1: vet build test

race:
	$(GO) test -race ./...

# race-parallel: focused -race coverage of the host-parallel execution
# paths — the speculative block engine (gpusim), the root determinism
# suite's store/recovery slices, and the harness/campaign fan-out.
race-parallel:
	$(GO) test -race -run 'TestParallel' ./internal/gpusim/
	$(GO) test -race -short -run 'TestParallelDeterminismStores|TestParallelDeterminismRecovery' .
	$(GO) test -race -run 'TestCampaignParallel|TestScalingParallel' ./internal/faultsim/ ./internal/harness/

# matrix: the parallel determinism suite at two host scheduler widths;
# GOMAXPROCS must never change a reported number. -count=1 defeats the
# test cache, which does not key on GOMAXPROCS (the runtime reads it,
# not the test).
matrix:
	GOMAXPROCS=1 $(GO) test -short -count=1 -run 'TestParallelDeterminism' .
	GOMAXPROCS=4 $(GO) test -short -count=1 -run 'TestParallelDeterminism' .

# smoke: a quick seeded fault-injection sweep (every kernel × fault kind,
# 8 seeds each). Exits non-zero on any panic or silent mismatch.
smoke:
	$(GO) run ./cmd/lpfault -seeds 8

# campaign: the full 204-case robustness campaign from EXPERIMENTS.md.
campaign:
	$(GO) run ./cmd/lpfault -seeds 12

# scrub-smoke: a quick media-error rate sweep against the self-healing
# recovery orchestrator (scrub, quarantine, watchdog). Exits non-zero on
# any dishonest outcome (lying heal, untyped error, panic).
scrub-smoke:
	$(GO) run ./cmd/lpfault -ratesweep -seeds 3

# scrub-campaign: the fuller sweep from EXPERIMENTS.md, including the
# spin-lock/stuck-cell configuration.
scrub-campaign:
	$(GO) run ./cmd/lpfault -ratesweep -seeds 8
	$(GO) run ./cmd/lpfault -ratesweep -seeds 8 -locks -rates 0.05,0.2,0.4 -stuckfrac 0.5

# cluster-smoke: a quick multi-device failover sweep (2- and 3-device
# clusters, every failure kind × router, race detector on). Every case
# kills one device mid-launch and must recover the shared durable image
# bit-exactly on the survivors; exits non-zero on any mismatch or panic.
cluster-smoke:
	$(GO) run -race ./cmd/lpfault -cluster -seeds 2 -jobs 4 -parallel 4

# cluster-soak: the fuller failover sweep for scheduled CI — larger
# clusters, more seeds, plus a strict-quorum configuration that must
# degrade honestly.
cluster-soak:
	$(GO) run ./cmd/lpfault -cluster -devices 2,3,4,6 -seeds 8 -parallel 4
	$(GO) run ./cmd/lpfault -cluster -devices 2 -minalive 2 -seeds 8 -parallel 4

# persistcheck-smoke: the crash-consistency model checker at a fixed seed
# and small budget (the kernel × backend coverage sweep always runs in
# full). Exits non-zero on any persistency contract violation.
persistcheck-smoke:
	$(GO) run ./cmd/lpcheck -seed 1 -n 80 -quiet

# persistcheck-soak: a longer seeded fuzzing run for scheduled CI.
persistcheck-soak:
	$(GO) run ./cmd/lpcheck -seed 1 -n 100000 -duration 10m

# model-smoke: every registered persistency model (lp, ep, sbrp, strict)
# through its unit contract, a seeded crash campaign, and the model
# checker's backend sweep — race detector on. Exits non-zero on any
# prediction/recovery mismatch or contract violation.
model-smoke:
	$(GO) test -race ./internal/pmodel/
	$(GO) test -race -run 'TestModelCampaign|TestModelCaseReproducible' ./internal/faultsim/
	$(GO) run -race ./cmd/lpcheck -model all -kernels tmm,spmv -seed 1 -n 20 -quiet

# model-soak: the full model × workload crash campaign plus a deep model
# checker run for scheduled CI.
model-soak:
	$(GO) run ./cmd/lpfault -model all -seeds 8 -parallel 4
	$(GO) run ./cmd/lpcheck -model all -seed 1 -n 4000 -quiet

# serve-smoke: the MEGA-KV serving layer under race, the root
# determinism pin (Workers 1 vs 8, byte-identical reports), and a quick
# mid-serving crash sweep over every persistency model. Exits non-zero
# on any report divergence, ledger violation, recovery mismatch or
# panic.
serve-smoke:
	$(GO) test -race ./internal/serve/
	$(GO) test -race -count=1 -run 'TestServeDeterminism' .
	$(GO) run ./cmd/lpfault -serve -seeds 2 -parallel 4

# serve-soak: the fuller serving sweep for scheduled CI — more crash
# seeds per model plus the full harness serving experiment at host
# parallelism.
serve-soak:
	$(GO) run ./cmd/lpfault -serve -seeds 8 -parallel 4
	$(GO) run ./cmd/lpbench -exp serve -parallel 4

# replica-smoke: replicated durable placement under race (placer and
# adoption unit contracts, the cluster-backed serving layer), the root
# determinism pin (replicated run + campaign, Workers 1 vs 8), and a
# quick R in {1,2} failover sweep — every R>=2 case must recover via
# replica adoption with zero re-executed blocks and a bit-exact pool
# audit. Exits non-zero on any contract breach, mismatch or panic.
replica-smoke:
	$(GO) test -race -run 'TestReplica|TestPlacer|TestCluster' ./internal/cluster/ ./internal/serve/ ./internal/faultsim/
	$(GO) test -race -count=1 -run 'TestParallelDeterminismReplicatedCluster|TestServeClusterDeterminism' .
	$(GO) run ./cmd/lpfault -replicas -rfactors 1,2 -model lp,sbrp -jobs 4 -seeds 2 -parallel 4

# replica-soak: the fuller replicated-failover sweep for scheduled CI —
# R up to the device count, every placer, all registered models, plus
# the harness write-amplification experiment and a degraded cluster
# serving run.
replica-soak:
	$(GO) run ./cmd/lpfault -replicas -rfactors 1,2,3,4 -model all -seeds 6 -parallel 4
	$(GO) run ./cmd/lpbench -exp replicacompare -parallel 4
	$(GO) run ./cmd/lpserve -devices 3 -fail-launch 2 -fail-device 1 -json > /dev/null

# bench: regenerate every artifact benchmark, then record the
# serial-vs-parallel wall-clock comparison to BENCH_parallel.json.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
	BENCH_JSON=BENCH_parallel.json $(GO) test -run '^TestWriteBenchParallelJSON$$' -v .

ci: vet build race race-parallel matrix smoke scrub-smoke cluster-smoke persistcheck-smoke model-smoke serve-smoke replica-smoke
