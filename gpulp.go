// Package gpulp is a Go reproduction of "Scalable and Fast Lazy
// Persistency on GPUs" (IISWC 2020): a Lazy Persistency (LP) runtime for
// GPU kernels, built over a deterministic SIMT GPU simulator with an
// NVM-backed write-back memory hierarchy.
//
// Lazy Persistency makes kernel results crash-recoverable without any
// cache flushing or logging: every thread block is a recovery region
// whose persistent stores are folded into a checksum; the checksums live
// in (NVM-backed) global memory and persist through natural cache
// eviction just like the data. After a crash, a validation kernel
// recomputes each region's checksums from the durable data and
// re-executes only the regions that fail.
//
// The package is a facade over the implementation packages:
//
//   - NewSystem builds a simulated device + NVM memory;
//   - NewLP creates an LP runtime for a kernel geometry, in any point of
//     the paper's design space (checksum kind, checksum store, locking,
//     reduction strategy);
//   - Region/Instrument protect kernels (explicitly or directive-style);
//   - Validate/ValidateAndRecover implement crash recovery;
//   - Translate implements the #pragma nvm lpcuda_* source directives.
//
// See the examples/ directory for runnable walkthroughs, cmd/lpbench for
// the reproduction of every table and figure in the paper's evaluation,
// and DESIGN.md / EXPERIMENTS.md for the system inventory and measured
// results.
package gpulp

import (
	"gpulp/internal/checksum"
	"gpulp/internal/core"
	"gpulp/internal/directive"
	"gpulp/internal/gpusim"
	"gpulp/internal/memsim"
)

// Re-exported simulator types.
type (
	// Device is the simulated GPU.
	Device = gpusim.Device
	// DeviceConfig describes the simulated GPU.
	DeviceConfig = gpusim.Config
	// Memory is the simulated NVM-backed memory hierarchy.
	Memory = memsim.Memory
	// MemoryConfig describes cache and NVM parameters.
	MemoryConfig = memsim.Config
	// MemRegion is a named global-memory allocation.
	MemRegion = memsim.Region
	// Block is the per-thread-block kernel context.
	Block = gpusim.Block
	// Thread is the per-thread view within a block phase.
	Thread = gpusim.Thread
	// Warp exposes warp-level (shuffle) operations.
	Warp = gpusim.Warp
	// Dim3 is a CUDA-style extent/index.
	Dim3 = gpusim.Dim3
	// KernelFunc is a kernel body, invoked once per thread block.
	KernelFunc = gpusim.KernelFunc
	// LaunchResult summarizes a kernel launch.
	LaunchResult = gpusim.LaunchResult
)

// Re-exported Lazy Persistency types.
type (
	// LP is the Lazy Persistency runtime.
	LP = core.LP
	// LPConfig selects a point in the paper's design space.
	LPConfig = core.Config
	// Region is the per-block LP context (nil is valid and inert).
	Region = core.Region
	// RecomputeFunc recomputes a block's checksums during validation.
	RecomputeFunc = core.RecomputeFunc
	// RecoveryReport summarizes a ValidateAndRecover run.
	RecoveryReport = core.RecoveryReport
	// ChecksumState is a dual (modular+parity) checksum accumulator.
	ChecksumState = checksum.State
)

// Re-exported directive-translation types.
type (
	// DirectiveOutput is the result of translating #pragma nvm source.
	DirectiveOutput = directive.Output
)

// D1, D2, D3 construct launch dimensions.
func D1(x int) Dim3       { return gpusim.D1(x) }
func D2(x, y int) Dim3    { return gpusim.D2(x, y) }
func D3(x, y, z int) Dim3 { return gpusim.D3(x, y, z) }

// DefaultDeviceConfig returns a Volta-class device configuration.
func DefaultDeviceConfig() DeviceConfig { return gpusim.DefaultConfig() }

// DefaultMemoryConfig returns the paper's NVM configuration (§VII-3).
func DefaultMemoryConfig() MemoryConfig { return memsim.DefaultConfig() }

// DefaultLPConfig returns the paper's final design: checksum global
// array, lock-free, warp-shuffle reduction, dual checksums (§V).
func DefaultLPConfig() LPConfig { return core.DefaultConfig() }

// NewSystem builds a simulated GPU over a fresh NVM-backed memory.
func NewSystem(dev DeviceConfig, mem MemoryConfig) (*Device, *Memory) {
	m := memsim.MustNew(mem)
	return gpusim.MustNew(dev, m), m
}

// NewDefaultSystem builds a system with the default configurations.
func NewDefaultSystem() (*Device, *Memory) {
	return NewSystem(DefaultDeviceConfig(), DefaultMemoryConfig())
}

// NewLP creates a Lazy Persistency runtime for kernels launched with the
// given geometry on dev.
func NewLP(dev *Device, cfg LPConfig, grid, block Dim3) *LP {
	return core.New(dev, cfg, grid, block)
}

// FloatBits is the paper's Fig. 2 float-to-integer conversion used for
// checksumming floating-point stores (3.5 -> 1080033280).
func FloatBits(v float32) uint32 { return checksum.FloatBits(v) }

// Translate processes CUDA-style source annotated with the paper's
// #pragma nvm lpcuda_* directives (§VI), returning the instrumented
// program and the generated check-and-recovery code.
func Translate(src string) (*DirectiveOutput, error) { return directive.Translate(src) }
