package gpulp_test

// End-to-end tests of the public facade: everything a downstream user
// does — build a system, protect a kernel (explicitly and
// directive-style), crash, recover, translate pragmas — through the
// gpulp package alone.

import (
	"strings"
	"testing"

	"gpulp"
)

func TestFacadeFig2(t *testing.T) {
	if got := gpulp.FloatBits(3.5); got != 1080033280 {
		t.Fatalf("FloatBits(3.5) = %d, want 1080033280 (paper Fig. 2)", got)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	memCfg := gpulp.DefaultMemoryConfig()
	memCfg.CacheBytes = 64 << 10
	dev, mem := gpulp.NewSystem(gpulp.DefaultDeviceConfig(), memCfg)

	grid, blk := gpulp.D1(64), gpulp.D1(128)
	n := grid.Size() * blk.Size()
	out := dev.Alloc("out", n*4)
	out.HostZero()

	lp := gpulp.NewLP(dev, gpulp.DefaultLPConfig(), grid, blk)
	kernel := func(b *gpulp.Block) {
		r := lp.Begin(b)
		b.ForAll(func(th *gpulp.Thread) {
			v := uint32(th.GlobalLinear()) * 97
			th.StoreU32(out, th.GlobalLinear(), v)
			r.Update(th, v)
		})
		r.Commit()
	}
	res := dev.Launch("fill", grid, blk, kernel)
	if res.Blocks != 64 || res.Cycles <= 0 {
		t.Fatalf("launch looks wrong: %+v", res)
	}

	mem.Crash()

	recompute := func(b *gpulp.Block, r *gpulp.Region) {
		b.ForAll(func(th *gpulp.Thread) {
			r.Update(th, th.LoadU32(out, th.GlobalLinear()))
		})
	}
	rep, err := lp.ValidateAndRecover(kernel, recompute, 4)
	if err != nil {
		t.Fatalf("recovery failed: %v (%v)", err, rep)
	}
	for i := 0; i < n; i++ {
		if got, want := out.PeekU32(i), uint32(i)*97; got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestFacadeInstrument(t *testing.T) {
	dev, mem := gpulp.NewDefaultSystem()
	grid, blk := gpulp.D1(16), gpulp.D1(64)
	out := dev.Alloc("out", grid.Size()*blk.Size()*4)
	out.HostZero()

	lp := gpulp.NewLP(dev, gpulp.DefaultLPConfig(), grid, blk)
	plain := func(b *gpulp.Block) {
		b.ForAll(func(th *gpulp.Thread) {
			th.StoreF32(out, th.GlobalLinear(), float32(th.GlobalLinear())*0.25)
		})
	}
	dev.Launch("work", grid, blk, lp.Instrument(plain, out))
	mem.FlushAll()
	mem.Crash()

	failed, _, _ := lp.Validate(func(b *gpulp.Block, r *gpulp.Region) {
		b.ForAll(func(th *gpulp.Thread) {
			r.UpdateF32(th, th.LoadF32(out, th.GlobalLinear()))
		})
	})
	if len(failed) != 0 {
		t.Fatalf("flushed run failed validation after crash: %d regions", len(failed))
	}
}

func TestFacadeTranslate(t *testing.T) {
	src := `__global__ void k(float *out) {
    int i = blockIdx.x;
    float v = f(i);
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = v;
}
`
	res, err := gpulp.Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Instrumented, "lpChecksumUpdate") {
		t.Error("instrumented output missing checksum update call")
	}
	if !strings.Contains(res.Recovery, "crK") {
		t.Errorf("recovery kernel missing:\n%s", res.Recovery)
	}
}

func TestFacadeD123(t *testing.T) {
	if gpulp.D1(5).Size() != 5 || gpulp.D2(2, 3).Size() != 6 || gpulp.D3(2, 3, 4).Size() != 24 {
		t.Error("dimension constructors broken")
	}
}
