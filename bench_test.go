package gpulp_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (IISWC 2020, "Scalable and Fast Lazy Persistency on GPUs"). Each
// benchmark regenerates its artifact through the experiment harness and
// reports the headline series as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The per-iteration work is a full
// simulated experiment, so iteration counts stay at 1 under the default
// -benchtime. cmd/lpbench renders the same artifacts as tables.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"gpulp/internal/faultsim"
	"gpulp/internal/harness"
)

func newRunner() *harness.Runner {
	return harness.NewRunner(harness.DefaultOptions())
}

// reportPct parses a "12.34%" cell and reports it as a metric.
func reportPct(b *testing.B, name, cell string) {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		b.Fatalf("cannot parse %q: %v", cell, err)
	}
	b.ReportMetric(v, name)
}

// reportTimes parses a "12.34x" cell and reports it as a metric.
func reportTimes(b *testing.B, name, cell string) {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		b.Fatalf("cannot parse %q: %v", cell, err)
	}
	b.ReportMetric(v, name)
}

// lastRow returns the final (geomean/summary) row of a table.
func lastRow(t *harness.Table) []string { return t.Rows[len(t.Rows)-1] }

// BenchmarkFig5NaiveLP regenerates Fig. 5: execution-time overhead of the
// naive LP designs (lock-free hash tables with shuffle reduction).
func BenchmarkFig5NaiveLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		row := lastRow(tbl)
		reportPct(b, "quad-geomean-%", row[1])
		reportPct(b, "cuckoo-geomean-%", row[2])
	}
}

// BenchmarkTable2Collisions regenerates Table II: hash-table collision
// counts during checksum insertion.
func BenchmarkTable2Collisions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.Table2()
		if err != nil {
			b.Fatal(err)
		}
		var quad, cuckoo float64
		for _, row := range tbl.Rows {
			q, _ := strconv.ParseFloat(row[1], 64)
			c, _ := strconv.ParseFloat(row[2], 64)
			quad += q
			cuckoo += c
		}
		b.ReportMetric(quad, "quad-collisions-total")
		b.ReportMetric(cuckoo, "cuckoo-collisions-total")
	}
}

// BenchmarkTable3Locking regenerates Table III: lock-based vs lock-free
// slowdowns.
func BenchmarkTable3Locking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.Table3()
		if err != nil {
			b.Fatal(err)
		}
		row := lastRow(tbl)
		reportTimes(b, "quad-lockfree-geomean-x", row[1])
		reportTimes(b, "quad-lockbased-geomean-x", row[2])
		reportTimes(b, "cuckoo-lockfree-geomean-x", row[3])
		reportTimes(b, "cuckoo-lockbased-geomean-x", row[4])
	}
}

// BenchmarkTable4Reduction regenerates Table IV: parallel (shuffle) vs
// sequential (through-memory) checksum reduction.
func BenchmarkTable4Reduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.Table4()
		if err != nil {
			b.Fatal(err)
		}
		row := lastRow(tbl)
		reportPct(b, "quad-shfl-geomean-%", row[1])
		reportPct(b, "quad-noshfl-geomean-%", row[2])
		reportPct(b, "cuckoo-shfl-geomean-%", row[3])
		reportPct(b, "cuckoo-noshfl-geomean-%", row[4])
	}
}

// BenchmarkTable5GlobalArray regenerates Table V: the paper's final
// design (checksum global array + shuffle), time and space overheads.
func BenchmarkTable5GlobalArray(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.Table5()
		if err != nil {
			b.Fatal(err)
		}
		row := lastRow(tbl)
		reportPct(b, "time-geomean-%", row[1])
		reportPct(b, "space-geomean-%", row[2])
	}
}

// BenchmarkNoCollision regenerates the §IV-D.2 experiment: MRI-GRIDDING
// with hash collisions artificially removed.
func BenchmarkNoCollision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.NoCollision()
		if err != nil {
			b.Fatal(err)
		}
		reportPct(b, "quad-collisionfree-%", tbl.Rows[0][2])
		reportPct(b, "cuckoo-collisionfree-%", tbl.Rows[1][2])
	}
}

// BenchmarkNoAtomic regenerates the §IV-D.3 experiment: insertion with
// the atomic instructions removed.
func BenchmarkNoAtomic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.NoAtomic()
		if err != nil {
			b.Fatal(err)
		}
		reportPct(b, "quad-noatomic-geomean-%", tbl.Rows[0][2])
		reportPct(b, "cuckoo-noatomic-geomean-%", tbl.Rows[1][2])
	}
}

// BenchmarkMultiChecksum regenerates §VII-2: single vs dual checksums.
func BenchmarkMultiChecksum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.MultiChecksum()
		if err != nil {
			b.Fatal(err)
		}
		reportPct(b, "parity-%", tbl.Rows[0][1])
		reportPct(b, "modular-%", tbl.Rows[1][1])
		reportPct(b, "dual-%", tbl.Rows[2][1])
	}
}

// BenchmarkWriteAmplification regenerates §VII-3: the NVM write increase
// caused by LP's checksum stores.
func BenchmarkWriteAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.WriteAmp()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tbl.Rows {
			reportPct(b, row[0]+"-extra-writes-%", strings.TrimPrefix(row[3], "+"))
		}
	}
}

// BenchmarkMegaKV regenerates §VII-4: LP overhead on the MEGA-KV
// key-value store's search/delete/insert batches.
func BenchmarkMegaKV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.MegaKV()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tbl.Rows {
			reportPct(b, row[0]+"-%", row[1])
		}
	}
}

// BenchmarkFalseNegatives regenerates the §IV-B checksum error-injection
// study.
func BenchmarkFalseNegatives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.FalseNeg()
		if err != nil {
			b.Fatal(err)
		}
		// Report the dual-checksum lost-store rate (the paper's design
		// point for LP's own failure mode).
		for _, row := range tbl.Rows {
			if row[0] == "modular+parity" && strings.HasPrefix(row[1], "lost-store") {
				v, _ := strconv.ParseFloat(row[4], 64)
				b.ReportMetric(v, "dual-loststore-fn-rate")
			}
		}
	}
}

// BenchmarkRecovery regenerates the crash/validate/recover flow and
// reports the recovery cost of the first workload.
func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.Recovery()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tbl.Rows {
			if row[5] != "verified" {
				b.Fatalf("recovery left %s unverified: %s", row[0], row[5])
			}
			cycles, _ := strconv.ParseFloat(row[4], 64)
			b.ReportMetric(cycles, fmt.Sprintf("%s-recovery-cycles", row[0]))
		}
	}
}

// BenchmarkTable1Inventory exercises the registry (Table I is static but
// keeping one benchmark per artifact makes -bench=. exhaustive).
func BenchmarkTable1Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if _, err := r.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEPCompare regenerates the §I/§II motivation: Eager vs Lazy
// Persistency on time overhead and NVM write amplification.
func BenchmarkEPCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.EPCompare()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tbl.Rows {
			reportPct(b, row[0]+"-ep-%", row[1])
			reportPct(b, row[0]+"-lp-%", row[2])
		}
	}
}

// BenchmarkAblationScaling sweeps thread-block count — the paper's title
// claim: the global array scales, hash tables do not, locks are fatal.
func BenchmarkAblationScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.Scaling()
		if err != nil {
			b.Fatal(err)
		}
		big := lastRow(tbl) // the largest block count
		reportPct(b, "globalarray-at-32768-blocks-%", big[1])
		reportPct(b, "quad-lockfree-at-32768-blocks-%", big[2])
	}
}

// BenchmarkAblationFusion sweeps the §IV-A region fusion factor.
func BenchmarkAblationFusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.Fusion()
		if err != nil {
			b.Fatal(err)
		}
		bytes1, _ := strconv.ParseFloat(tbl.Rows[0][2], 64)
		bytes64, _ := strconv.ParseFloat(lastRow(tbl)[2], 64)
		b.ReportMetric(bytes1/bytes64, "table-shrink-at-fusion-64")
	}
}

// BenchmarkAblationCheckpoint sweeps the §IV-A whole-cache-flush interval.
func BenchmarkAblationCheckpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		noCkpt, _ := strconv.ParseFloat(tbl.Rows[0][3], 64)
		dense, _ := strconv.ParseFloat(lastRow(tbl)[3], 64)
		b.ReportMetric(noCkpt, "failed-blocks-no-checkpoint")
		b.ReportMetric(dense, "failed-blocks-64-interval")
	}
}

// BenchmarkCPULP contrasts the original CPU LP recipe with the paper's
// GPU design across concurrency levels (§II-A).
func BenchmarkCPULP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.CPULP()
		if err != nil {
			b.Fatal(err)
		}
		reportPct(b, "cpu-design-at-16-%", tbl.Rows[0][1])
		reportPct(b, "cpu-design-at-1024-%", lastRow(tbl)[1])
		reportPct(b, "gpu-design-at-1024-%", lastRow(tbl)[2])
	}
}

// BenchmarkMTBFPlan derives §IV-A's checkpoint interval from measured
// costs and a failure-rate sweep.
func BenchmarkMTBFPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.MTBFPlan()
		if err != nil {
			b.Fatal(err)
		}
		iv, _ := strconv.ParseFloat(tbl.Rows[1][1], 64)
		b.ReportMetric(iv, "optimal-interval-at-1e9-mtbf")
	}
}

// BenchmarkAblationLoadFactor sweeps the quadratic-probing fill level.
func BenchmarkAblationLoadFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tbl, err := r.LoadFactor()
		if err != nil {
			b.Fatal(err)
		}
		c70, _ := strconv.ParseFloat(tbl.Rows[2][2], 64)
		c95, _ := strconv.ParseFloat(lastRow(tbl)[2], 64)
		b.ReportMetric(c70, "collisions-at-70pct")
		b.ReportMetric(c95, "collisions-at-95pct")
	}
}

// ---------------------------------------------------------------------
// Serial vs parallel wall-clock (the host-parallel execution paths:
// harness Options.Parallel and faultsim Campaign.Parallel). Both paths
// are bit-deterministic at any width — see determinism_test.go — so
// these benchmarks measure time only. `make bench` also runs
// TestWriteBenchParallelJSON, which records the comparison to
// BENCH_parallel.json.

// benchParallel matches the `-parallel 8` invocations the README
// documents for cmd/lpbench and cmd/lpfault.
const benchParallel = 8

func runScalingOnce(tb testing.TB, parallel int) time.Duration {
	tb.Helper()
	opt := harness.DefaultOptions()
	opt.Parallel = parallel
	r := harness.NewRunner(opt)
	start := time.Now()
	if _, err := r.Scaling(); err != nil {
		tb.Fatalf("scaling (parallel=%d): %v", parallel, err)
	}
	return time.Since(start)
}

func runCampaignOnce(tb testing.TB, parallel int) time.Duration {
	tb.Helper()
	c := faultsim.DefaultCampaign(2)
	c.Minimize = false
	c.Parallel = parallel
	start := time.Now()
	rep, err := c.Run()
	if err != nil {
		tb.Fatalf("campaign (parallel=%d): %v", parallel, err)
	}
	if rep.Failed() {
		tb.Fatalf("campaign (parallel=%d) reported failures", parallel)
	}
	return time.Since(start)
}

func BenchmarkScalingSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runScalingOnce(b, 1)
	}
}

func BenchmarkScalingParallel8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runScalingOnce(b, benchParallel)
	}
}

func BenchmarkCampaignSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCampaignOnce(b, 1)
	}
}

func BenchmarkCampaignParallel8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCampaignOnce(b, benchParallel)
	}
}

// benchEntry is one serial-vs-parallel comparison in BENCH_parallel.json.
type benchEntry struct {
	Name       string  `json:"name"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

type benchReport struct {
	GeneratedBy string       `json:"generated_by"`
	HostCPUs    int          `json:"host_cpus"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Parallel    int          `json:"parallel"`
	Entries     []benchEntry `json:"entries"`
	Note        string       `json:"note"`
}

// TestWriteBenchParallelJSON measures the serial and parallel wall-clock
// of the scaling experiment and a small fault campaign and writes the
// comparison to the file named by BENCH_JSON (skipped when unset; wired
// up by `make bench`). Wall-clock speedup tracks min(host_cpus,
// gomaxprocs, parallel): on a single-CPU host the fan-out cannot reduce
// wall-clock and the recorded speedup is ~1.0x, which is why the host
// CPU count is part of the report.
func TestWriteBenchParallelJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> (or run `make bench`) to record serial-vs-parallel timings")
	}
	entry := func(name string, run func(tb testing.TB, parallel int) time.Duration) benchEntry {
		serial := run(t, 1)
		par := run(t, benchParallel)
		return benchEntry{
			Name:       name,
			SerialMS:   float64(serial.Microseconds()) / 1e3,
			ParallelMS: float64(par.Microseconds()) / 1e3,
			Speedup:    float64(serial) / float64(par),
		}
	}
	rep := benchReport{
		GeneratedBy: "make bench (bench_test.go TestWriteBenchParallelJSON)",
		HostCPUs:    runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallel:    benchParallel,
		Entries: []benchEntry{
			entry("lpbench -exp scaling -parallel 8", runScalingOnce),
			entry("lpfault -seeds 2 -minimize=false -parallel 8", runCampaignOnce),
		},
		Note: "results are bit-identical at any parallel width; wall-clock speedup is bounded by min(host_cpus, gomaxprocs, parallel) and by the longest single job",
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Entries {
		t.Logf("%s: serial %.0fms, parallel %.0fms, speedup %.2fx", e.Name, e.SerialMS, e.ParallelMS, e.Speedup)
	}
}
