package gpulp_test

// Determinism pin for the persistency-model zoo: every registered model
// — crash, damage prediction, recovery, durable image — must be
// bit-identical between the serial engine (Workers=1) and the parallel
// engine (Workers=detWorkers). This is the contract that lets the
// model-compare harness, the model fault campaigns, and persistcheck's
// model scenarios run parallel without perturbing a single number.

import (
	"bytes"
	"reflect"
	"testing"

	"gpulp/internal/core"
	"gpulp/internal/gpusim"
	"gpulp/internal/kernels"
	"gpulp/internal/memsim"
	"gpulp/internal/pmodel"
)

// modelRun captures every observable output of one crash-recovery run
// under a persistency model.
type modelRun struct {
	launch    gpusim.LaunchResult
	predicted []int
	report    pmodel.Report
	nvm       []byte
}

func runModelRecovery(t *testing.T, spec pmodel.Spec, workers int) modelRun {
	t.Helper()
	mem := memsim.MustNew(memsim.DefaultConfig())
	devCfg := gpusim.DefaultConfig()
	devCfg.Workers = workers
	dev := gpusim.MustNew(devCfg, mem)
	w := kernels.New("tmm", 1)
	w.Setup(dev)
	grid, blk := w.Geometry()
	lpCfg := core.DefaultConfig()
	m := spec.New(dev, w, pmodel.Options{LP: &lpCfg})

	// Fire drops volatile cache contents at the crash instant, so the
	// flag-based models see exactly what they made durable.
	dev.SetCrashTrigger(&gpusim.CrashTrigger{AfterBlocks: grid.Size() / 2,
		Fire: func(*gpusim.Device) { mem.Crash() }})
	res := dev.Launch("tmm-"+spec.Name, grid, blk, m.Kernel())
	if !res.Interrupted {
		t.Fatalf("%s workers=%d: crash trigger did not fire", spec.Name, workers)
	}
	predicted := m.PredictDamage(mem.SnapshotNVM())
	rep, err := m.Recover()
	if err != nil {
		t.Fatalf("%s workers=%d: recovery failed: %v", spec.Name, workers, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s workers=%d: post-recovery verify failed: %v", spec.Name, workers, err)
	}
	mem.FlushAll()
	return modelRun{launch: res, predicted: predicted, report: rep, nvm: mem.NVMImage()}
}

// TestParallelDeterminismModels crashes TMM halfway through under every
// registered persistency model with both engines and asserts identical
// launch results, damage predictions, recovery reports, and
// post-recovery durable images — and that each model's prediction names
// exactly what its recovery repaired (the durable-state contract).
func TestParallelDeterminismModels(t *testing.T) {
	for _, spec := range pmodel.Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			serial := runModelRecovery(t, spec, 1)
			parallel := runModelRecovery(t, spec, detWorkers)
			if serial.launch != parallel.launch {
				t.Errorf("launch result diverged\nserial:   %+v\nparallel: %+v", serial.launch, parallel.launch)
			}
			if !reflect.DeepEqual(serial.predicted, parallel.predicted) {
				t.Errorf("damage prediction diverged\nserial:   %v\nparallel: %v", serial.predicted, parallel.predicted)
			}
			if !reflect.DeepEqual(serial.report, parallel.report) {
				t.Errorf("recovery report diverged\nserial:   %+v\nparallel: %+v", serial.report, parallel.report)
			}
			if !bytes.Equal(serial.nvm, parallel.nvm) {
				t.Errorf("post-recovery NVM image diverged")
			}
			if len(serial.predicted) == 0 {
				t.Errorf("half-grid crash predicted no damage")
			}
			if !reflect.DeepEqual(serial.predicted, serial.report.Damaged) {
				t.Errorf("durable-state contract broken: predicted %v, recovered %v",
					serial.predicted, serial.report.Damaged)
			}
		})
	}
}
