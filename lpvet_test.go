package gpulp_test

// The static-contract gate: lpvet over the whole module must be clean.
// Any intentional violation needs a reasoned //lpvet:allow pragma, and
// the allow checker keeps those pragmas honest (an allow that suppresses
// nothing is itself a finding).

import (
	"testing"

	"gpulp/internal/analysis/lpvet"
)

func TestLpvetModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lpvet type-checks the whole module; skipped in -short")
	}
	findings, err := lpvet.Vet(".", "./...")
	if err != nil {
		t.Fatalf("lpvet: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("lpvet found %d violation(s); fix them or add a reasoned //lpvet:allow", len(findings))
	}
}
